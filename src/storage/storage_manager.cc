#include "src/storage/storage_manager.h"

#include "src/core/database.h"
#include "src/obs/storage_metrics.h"
#include "src/util/logging.h"

namespace coral {

StatusOr<std::unique_ptr<StorageManager>> StorageManager::Open(
    const std::string& path_prefix, TermFactory* factory, Options options) {
  auto sm = std::unique_ptr<StorageManager>(new StorageManager(factory));
  std::string db_path = path_prefix + ".db";
  std::string wal_path = path_prefix + ".wal";

  CORAL_RETURN_IF_ERROR(sm->disk_.Open(db_path));
  // Crash recovery before any page is cached. If recovery cannot run or
  // the log cannot be (re)opened, the database is still readable but no
  // write can be made atomic: degrade to read-only rather than fail —
  // and never treat "cannot open the log" as "nothing to recover".
  Status wal_ready = WriteAheadLog::Recover(wal_path, &sm->disk_);
  if (wal_ready.ok()) wal_ready = sm->wal_.Open(wal_path);
  if (!wal_ready.ok()) {
    sm->read_only_ = true;
    auto& metrics = obs::StorageMetrics::Instance();
    metrics.read_only_degradations.fetch_add(1, std::memory_order_relaxed);
    metrics.RecordEvent("storage.read_only", wal_ready.ToString());
  }

  sm->pool_ = std::make_unique<BufferPool>(&sm->disk_, options.pool_frames);
  // WAL protocol: log the before-image on the first modification of each
  // page inside a transaction. A logging failure must not abort the
  // process: it is latched, and Commit refuses while it stands.
  StorageManager* raw = sm.get();
  if (!sm->read_only_) {
    sm->pool_->SetModifyHook([raw](PageId page, const char* before) {
      Status st = raw->wal_.LogBeforeImage(page, before);
      if (!st.ok()) raw->RecordIoError(st);
    });
  }

  CORAL_ASSIGN_OR_RETURN(sm->catalog_, Catalog::Open(sm->pool_.get()));
  CORAL_RETURN_IF_ERROR(sm->OpenAll().status());
  sm->fully_open_ = true;
  return sm;
}

StorageManager::~StorageManager() {
  if (!disk_.is_open()) return;
  // An Open() that failed partway (e.g. under fault injection) leaves no
  // catalog worth saving; just drop the file handle.
  Status st = fully_open_ ? Close() : disk_.Close();
  if (!st.ok()) {
    std::fprintf(stderr, "coral: storage close failed: %s\n",
                 st.ToString().c_str());
  }
}

Status StorageManager::Close() {
  if (read_only_) return disk_.Close();  // nothing of ours to persist
  if (!io_error_.ok()) {
    // Some before-image never reached the log: flushing the dirty pages
    // now would persist state recovery cannot undo. Drop them instead —
    // whatever already hit disk is undone on the next Open.
    Status closed = disk_.Close();
    return closed.ok() ? Status::IOError(
                             "storage closed without flushing after I/O "
                             "failure: " + io_error_.ToString())
                       : closed;
  }
  CORAL_RETURN_IF_ERROR(SaveCatalog());
  CORAL_RETURN_IF_ERROR(pool_->FlushAll());
  return disk_.Close();
}

void StorageManager::RecordIoError(const Status& st) {
  if (io_error_.ok() && !st.ok()) io_error_ = st;
}

Status StorageManager::SaveCatalog() {
  if (read_only_) {
    return Status::FailedPrecondition(
        "storage is read-only (write-ahead log unavailable)");
  }
  CORAL_RETURN_IF_ERROR(catalog_.Save(pool_.get()));
  return pool_->FlushAll();
}

StatusOr<PersistentRelation*> StorageManager::OpenFromMeta(
    const RelationMeta& meta) {
  for (auto& rel : relations_) {
    if (rel->name() == meta.name && rel->arity() == meta.arity) {
      return rel.get();
    }
  }
  auto rel = std::unique_ptr<PersistentRelation>(
      new PersistentRelation(meta.name, meta.arity, this));
  CORAL_ASSIGN_OR_RETURN(HeapFile heap,
                         HeapFile::Open(pool_.get(), meta.heap_first));
  rel->heap_ = std::make_unique<HeapFile>(std::move(heap));
  rel->count_ = meta.count;
  for (const IndexMeta& idx : meta.indexes) {
    PersistentRelation::StoredIndex si;
    si.cols = idx.cols;
    si.tree =
        std::make_unique<BTree>(BTree::Open(pool_.get(), idx.root));
    rel->indexes_.push_back(std::move(si));
  }
  PersistentRelation* raw = rel.get();
  relations_.push_back(std::move(rel));
  return raw;
}

StatusOr<std::vector<PersistentRelation*>> StorageManager::OpenAll() {
  std::vector<PersistentRelation*> out;
  for (const RelationMeta& meta : catalog_.relations()) {
    CORAL_ASSIGN_OR_RETURN(PersistentRelation * rel, OpenFromMeta(meta));
    out.push_back(rel);
  }
  return out;
}

StatusOr<PersistentRelation*> StorageManager::CreateRelation(
    const std::string& name, uint32_t arity) {
  if (read_only_) {
    return Status::FailedPrecondition(
        "storage is read-only (write-ahead log unavailable)");
  }
  if (FindRelation(name, arity) != nullptr) {
    return Status::AlreadyExists("persistent relation " + name + "/" +
                                 std::to_string(arity) + " exists");
  }
  auto rel = std::unique_ptr<PersistentRelation>(
      new PersistentRelation(name, arity, this));
  CORAL_ASSIGN_OR_RETURN(HeapFile heap, HeapFile::Create(pool_.get()));
  rel->heap_ = std::make_unique<HeapFile>(std::move(heap));
  // Primary index over all columns: O(log n) duplicate checks.
  CORAL_ASSIGN_OR_RETURN(BTree tree, BTree::Create(pool_.get()));
  PersistentRelation::StoredIndex primary;
  for (uint32_t c = 0; c < arity; ++c) primary.cols.push_back(c);
  primary.tree = std::make_unique<BTree>(std::move(tree));
  rel->indexes_.push_back(std::move(primary));

  RelationMeta meta;
  meta.name = name;
  meta.arity = arity;
  meta.heap_first = rel->heap_->first_page();
  meta.count = 0;
  meta.indexes.push_back(IndexMeta{rel->indexes_[0].cols,
                                   rel->indexes_[0].tree->root()});
  catalog_.Upsert(std::move(meta));
  CORAL_RETURN_IF_ERROR(SaveCatalog());

  PersistentRelation* raw = rel.get();
  relations_.push_back(std::move(rel));
  return raw;
}

PersistentRelation* StorageManager::FindRelation(const std::string& name,
                                                 uint32_t arity) {
  for (auto& rel : relations_) {
    if (rel->name() == name && rel->arity() == arity) return rel.get();
  }
  return nullptr;
}

Status StorageManager::AttachTo(Database* db) {
  CORAL_ASSIGN_OR_RETURN(std::vector<PersistentRelation*> rels, OpenAll());
  for (PersistentRelation* rel : rels) {
    PredRef pred{db->factory()->symbols().Intern(rel->name()),
                 rel->arity()};
    CORAL_RETURN_IF_ERROR(db->RegisterExternalRelation(pred, rel));
  }
  return Status::OK();
}

Status StorageManager::Begin() {
  if (read_only_) {
    return Status::FailedPrecondition(
        "storage is read-only (write-ahead log unavailable)");
  }
  return wal_.Begin().status();
}

Status StorageManager::Commit() {
  // A latched I/O error means some before-image (or page write) failed:
  // committing could make a state durable that can no longer be undone.
  if (!io_error_.ok()) {
    return Status::IOError("commit refused after storage I/O failure: " +
                           io_error_.ToString());
  }
  CORAL_RETURN_IF_ERROR(SaveCatalog());
  // The catalog save itself may have tripped the WAL hook; re-check.
  if (!io_error_.ok()) {
    return Status::IOError("commit refused after storage I/O failure: " +
                           io_error_.ToString());
  }
  return wal_.Commit([this]() { return pool_->FlushAll(); });
}

Status StorageManager::Abort() {
  if (read_only_) {
    return Status::FailedPrecondition(
        "storage is read-only (write-ahead log unavailable)");
  }
  Status st = wal_.Abort(&disk_, [this](PageId page) {
    pool_->Invalidate(page);
  });
  if (!st.ok()) return st;
  // Every page image the transaction touched is back on disk; the latched
  // error (if any) no longer threatens durability.
  io_error_ = Status::OK();
  // In-memory relation state may be ahead of the restored pages; reload
  // relation metadata from the (restored) catalog.
  CORAL_ASSIGN_OR_RETURN(Catalog cat, Catalog::Open(pool_.get()));
  catalog_ = std::move(cat);
  for (auto& rel : relations_) {
    RelationMeta* meta = catalog_.Find(rel->name(), rel->arity());
    if (meta == nullptr) continue;
    rel->count_ = meta->count;
    for (size_t i = 0;
         i < rel->indexes_.size() && i < meta->indexes.size(); ++i) {
      *rel->indexes_[i].tree =
          BTree::Open(pool_.get(), meta->indexes[i].root);
    }
  }
  return Status::OK();
}

}  // namespace coral
