#include "src/storage/storage_manager.h"

#include "src/core/database.h"
#include "src/util/logging.h"

namespace coral {

StatusOr<std::unique_ptr<StorageManager>> StorageManager::Open(
    const std::string& path_prefix, TermFactory* factory, Options options) {
  auto sm = std::unique_ptr<StorageManager>(new StorageManager(factory));
  std::string db_path = path_prefix + ".db";
  std::string wal_path = path_prefix + ".wal";

  CORAL_RETURN_IF_ERROR(sm->disk_.Open(db_path));
  // Crash recovery before any page is cached.
  CORAL_RETURN_IF_ERROR(WriteAheadLog::Recover(wal_path, &sm->disk_));
  CORAL_RETURN_IF_ERROR(sm->wal_.Open(wal_path));

  sm->pool_ = std::make_unique<BufferPool>(&sm->disk_, options.pool_frames);
  // WAL protocol: log the before-image on the first modification of each
  // page inside a transaction.
  StorageManager* raw = sm.get();
  sm->pool_->SetModifyHook([raw](PageId page, const char* before) {
    Status st = raw->wal_.LogBeforeImage(page, before);
    CORAL_CHECK(st.ok()) << st.ToString();
  });

  CORAL_ASSIGN_OR_RETURN(sm->catalog_, Catalog::Open(sm->pool_.get()));
  CORAL_RETURN_IF_ERROR(sm->OpenAll().status());
  return sm;
}

StorageManager::~StorageManager() {
  if (disk_.is_open()) {
    Status st = Close();
    if (!st.ok()) {
      std::fprintf(stderr, "coral: storage close failed: %s\n",
                   st.ToString().c_str());
    }
  }
}

Status StorageManager::Close() {
  CORAL_RETURN_IF_ERROR(SaveCatalog());
  CORAL_RETURN_IF_ERROR(pool_->FlushAll());
  return disk_.Close();
}

Status StorageManager::SaveCatalog() {
  CORAL_RETURN_IF_ERROR(catalog_.Save(pool_.get()));
  return pool_->FlushAll();
}

StatusOr<PersistentRelation*> StorageManager::OpenFromMeta(
    const RelationMeta& meta) {
  for (auto& rel : relations_) {
    if (rel->name() == meta.name && rel->arity() == meta.arity) {
      return rel.get();
    }
  }
  auto rel = std::unique_ptr<PersistentRelation>(
      new PersistentRelation(meta.name, meta.arity, this));
  CORAL_ASSIGN_OR_RETURN(HeapFile heap,
                         HeapFile::Open(pool_.get(), meta.heap_first));
  rel->heap_ = std::make_unique<HeapFile>(std::move(heap));
  rel->count_ = meta.count;
  for (const IndexMeta& idx : meta.indexes) {
    PersistentRelation::StoredIndex si;
    si.cols = idx.cols;
    si.tree =
        std::make_unique<BTree>(BTree::Open(pool_.get(), idx.root));
    rel->indexes_.push_back(std::move(si));
  }
  PersistentRelation* raw = rel.get();
  relations_.push_back(std::move(rel));
  return raw;
}

StatusOr<std::vector<PersistentRelation*>> StorageManager::OpenAll() {
  std::vector<PersistentRelation*> out;
  for (const RelationMeta& meta : catalog_.relations()) {
    CORAL_ASSIGN_OR_RETURN(PersistentRelation * rel, OpenFromMeta(meta));
    out.push_back(rel);
  }
  return out;
}

StatusOr<PersistentRelation*> StorageManager::CreateRelation(
    const std::string& name, uint32_t arity) {
  if (FindRelation(name, arity) != nullptr) {
    return Status::AlreadyExists("persistent relation " + name + "/" +
                                 std::to_string(arity) + " exists");
  }
  auto rel = std::unique_ptr<PersistentRelation>(
      new PersistentRelation(name, arity, this));
  CORAL_ASSIGN_OR_RETURN(HeapFile heap, HeapFile::Create(pool_.get()));
  rel->heap_ = std::make_unique<HeapFile>(std::move(heap));
  // Primary index over all columns: O(log n) duplicate checks.
  CORAL_ASSIGN_OR_RETURN(BTree tree, BTree::Create(pool_.get()));
  PersistentRelation::StoredIndex primary;
  for (uint32_t c = 0; c < arity; ++c) primary.cols.push_back(c);
  primary.tree = std::make_unique<BTree>(std::move(tree));
  rel->indexes_.push_back(std::move(primary));

  RelationMeta meta;
  meta.name = name;
  meta.arity = arity;
  meta.heap_first = rel->heap_->first_page();
  meta.count = 0;
  meta.indexes.push_back(IndexMeta{rel->indexes_[0].cols,
                                   rel->indexes_[0].tree->root()});
  catalog_.Upsert(std::move(meta));
  CORAL_RETURN_IF_ERROR(SaveCatalog());

  PersistentRelation* raw = rel.get();
  relations_.push_back(std::move(rel));
  return raw;
}

PersistentRelation* StorageManager::FindRelation(const std::string& name,
                                                 uint32_t arity) {
  for (auto& rel : relations_) {
    if (rel->name() == name && rel->arity() == arity) return rel.get();
  }
  return nullptr;
}

Status StorageManager::AttachTo(Database* db) {
  CORAL_ASSIGN_OR_RETURN(std::vector<PersistentRelation*> rels, OpenAll());
  for (PersistentRelation* rel : rels) {
    PredRef pred{db->factory()->symbols().Intern(rel->name()),
                 rel->arity()};
    CORAL_RETURN_IF_ERROR(db->RegisterExternalRelation(pred, rel));
  }
  return Status::OK();
}

Status StorageManager::Begin() { return wal_.Begin().status(); }

Status StorageManager::Commit() {
  CORAL_RETURN_IF_ERROR(SaveCatalog());
  return wal_.Commit([this]() { return pool_->FlushAll(); });
}

Status StorageManager::Abort() {
  Status st = wal_.Abort(&disk_, [this](PageId page) {
    pool_->Invalidate(page);
  });
  if (!st.ok()) return st;
  // In-memory relation state may be ahead of the restored pages; reload
  // relation metadata from the (restored) catalog.
  CORAL_ASSIGN_OR_RETURN(Catalog cat, Catalog::Open(pool_.get()));
  catalog_ = std::move(cat);
  for (auto& rel : relations_) {
    RelationMeta* meta = catalog_.Find(rel->name(), rel->arity());
    if (meta == nullptr) continue;
    rel->count_ = meta->count;
    for (size_t i = 0;
         i < rel->indexes_.size() && i < meta->indexes.size(); ++i) {
      *rel->indexes_[i].tree =
          BTree::Open(pool_.get(), meta->indexes[i].root);
    }
  }
  return Status::OK();
}

}  // namespace coral
