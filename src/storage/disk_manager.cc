#include "src/storage/disk_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <vector>

#include "src/obs/storage_metrics.h"
#include "src/storage/fault.h"
#include "src/util/logging.h"

namespace coral {

DiskManager::~DiskManager() {
  if (fd_ >= 0) ::close(fd_);
}

Status DiskManager::Open(const std::string& path) {
  CORAL_CHECK(fd_ < 0) << "disk manager already open";
  std::error_code ec;
  bool existed = std::filesystem::exists(path, ec);
  CORAL_RETURN_IF_ERROR(
      FaultOpen(fp::kDiskOpen, path, O_RDWR | O_CREAT, 0644, &fd_));
  if (!existed) {
    // Make the directory entry durable: a crash right after creation must
    // not leave a database whose file silently vanished.
    Status st = FaultSyncParentDir(fp::kDiskDirSync, path);
    if (!st.ok()) {
      ::close(fd_);
      fd_ = -1;
      return st;
    }
  }
  path_ = path;
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    return Status::IOError("fstat " + path + ": " + std::strerror(errno));
  }
  if (st.st_size % kPageSize != 0) {
    // A crash in the middle of AllocatePage's pwrite leaves a torn page
    // at the tail. The allocation never completed, so nothing references
    // the partial page: chop it off rather than refuse the database.
    off_t aligned =
        static_cast<off_t>(st.st_size / kPageSize) * kPageSize;
    Status trunc = FaultFtruncate(fp::kDiskOpen, fd_, aligned);
    if (!trunc.ok()) {
      ::close(fd_);
      fd_ = -1;
      return trunc;
    }
    auto& metrics = obs::StorageMetrics::Instance();
    metrics.torn_tails_truncated.fetch_add(1, std::memory_order_relaxed);
    metrics.RecordEvent("disk.torn_alloc_truncated", path,
                        static_cast<uint64_t>(st.st_size - aligned));
    st.st_size = aligned;
  }
  num_pages_ = static_cast<uint32_t>(st.st_size / kPageSize);
  return Status::OK();
}

Status DiskManager::Close() {
  if (fd_ >= 0) {
    if (::close(fd_) != 0) {
      fd_ = -1;
      return Status::IOError("close: " + std::string(std::strerror(errno)));
    }
    fd_ = -1;
  }
  return Status::OK();
}

StatusOr<PageId> DiskManager::AllocatePage() {
  CORAL_CHECK(fd_ >= 0);
  PageId id = num_pages_;
  std::vector<char> zero(kPageSize, 0);
  CORAL_RETURN_IF_ERROR(FaultPWriteFull(
      fp::kDiskAllocWrite, fd_, zero.data(), kPageSize,
      static_cast<off_t>(id) * kPageSize));
  ++num_pages_;
  ++writes_;
  return id;
}

Status DiskManager::ReadPage(PageId id, char* buf) {
  CORAL_CHECK(fd_ >= 0);
  if (id >= num_pages_) {
    return Status::OutOfRange("read of unallocated page " +
                              std::to_string(id));
  }
  CORAL_RETURN_IF_ERROR(FaultPReadFull(fp::kDiskRead, fd_, buf, kPageSize,
                                       static_cast<off_t>(id) * kPageSize));
  ++reads_;
  return Status::OK();
}

Status DiskManager::WritePageImpl(const char* point, PageId id,
                                  const char* buf) {
  CORAL_CHECK(fd_ >= 0);
  if (id >= num_pages_) {
    return Status::OutOfRange("write of unallocated page " +
                              std::to_string(id));
  }
  CORAL_RETURN_IF_ERROR(FaultPWriteFull(
      point, fd_, buf, kPageSize, static_cast<off_t>(id) * kPageSize));
  ++writes_;
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const char* buf) {
  return WritePageImpl(fp::kDiskWrite, id, buf);
}

Status DiskManager::RestorePage(PageId id, const char* buf) {
  return WritePageImpl(fp::kWalRecoverWrite, id, buf);
}

Status DiskManager::Sync() {
  CORAL_CHECK(fd_ >= 0);
  return FaultFsync(fp::kDiskSync, fd_);
}

}  // namespace coral
