#include "src/storage/disk_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "src/util/logging.h"

namespace coral {

DiskManager::~DiskManager() {
  if (fd_ >= 0) ::close(fd_);
}

Status DiskManager::Open(const std::string& path) {
  CORAL_CHECK(fd_ < 0) << "disk manager already open";
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  path_ = path;
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    return Status::IOError("fstat " + path + ": " + std::strerror(errno));
  }
  if (st.st_size % kPageSize != 0) {
    return Status::Corruption("database file size not page-aligned: " +
                              path);
  }
  num_pages_ = static_cast<uint32_t>(st.st_size / kPageSize);
  return Status::OK();
}

Status DiskManager::Close() {
  if (fd_ >= 0) {
    if (::close(fd_) != 0) {
      fd_ = -1;
      return Status::IOError("close: " + std::string(std::strerror(errno)));
    }
    fd_ = -1;
  }
  return Status::OK();
}

StatusOr<PageId> DiskManager::AllocatePage() {
  CORAL_CHECK(fd_ >= 0);
  PageId id = num_pages_;
  std::vector<char> zero(kPageSize, 0);
  ssize_t n = ::pwrite(fd_, zero.data(), kPageSize,
                       static_cast<off_t>(id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("allocate page: " +
                           std::string(std::strerror(errno)));
  }
  ++num_pages_;
  ++writes_;
  return id;
}

Status DiskManager::ReadPage(PageId id, char* buf) {
  CORAL_CHECK(fd_ >= 0);
  if (id >= num_pages_) {
    return Status::OutOfRange("read of unallocated page " +
                              std::to_string(id));
  }
  ssize_t n =
      ::pread(fd_, buf, kPageSize, static_cast<off_t>(id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("read page " + std::to_string(id) + ": " +
                           std::string(std::strerror(errno)));
  }
  ++reads_;
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const char* buf) {
  CORAL_CHECK(fd_ >= 0);
  if (id >= num_pages_) {
    return Status::OutOfRange("write of unallocated page " +
                              std::to_string(id));
  }
  ssize_t n =
      ::pwrite(fd_, buf, kPageSize, static_cast<off_t>(id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("write page " + std::to_string(id) + ": " +
                           std::string(std::strerror(errno)));
  }
  ++writes_;
  return Status::OK();
}

Status DiskManager::Sync() {
  CORAL_CHECK(fd_ >= 0);
  if (::fsync(fd_) != 0) {
    return Status::IOError("fsync: " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

}  // namespace coral
