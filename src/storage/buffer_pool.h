// Copyright (c) 1993-style CORAL reproduction authors.
// The client-side buffer pool (paper §2/§3.2: "CORAL is the client
// process, and maintains buffers for persistent relations. If a requested
// tuple is not in the client buffer pool, a request is forwarded to the
// EXODUS server and the page with the requested tuple is retrieved").
// Pin/unpin discipline with LRU replacement of unpinned frames.

#ifndef CORAL_STORAGE_BUFFER_POOL_H_
#define CORAL_STORAGE_BUFFER_POOL_H_

#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/storage/disk_manager.h"

namespace coral {

class BufferPool;

/// A pinned page frame. Unpins on destruction (RAII).
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, PageId id, char* data, bool* dirty);
  ~PageGuard();
  PageGuard(PageGuard&& o) noexcept;
  PageGuard& operator=(PageGuard&& o) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  bool valid() const { return data_ != nullptr; }
  PageId id() const { return id_; }
  char* data() { return data_; }
  const char* data() const { return data_; }
  /// Marks the page dirty. MUST be called BEFORE modifying the frame: the
  /// first call per page hands the pre-modification image to the WAL hook.
  void MarkDirty();

  void Release();

 private:
  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPageId;
  char* data_ = nullptr;
  bool* dirty_ = nullptr;
};

class BufferPool {
 public:
  using ModifyHook = std::function<void(PageId, const char* before_image)>;

  BufferPool(DiskManager* disk, size_t frames);
  ~BufferPool();

  /// Pins the page, reading it from the server on a miss.
  StatusOr<PageGuard> Fetch(PageId id);

  /// Allocates a new page and pins it (zeroed; caller formats it).
  StatusOr<PageGuard> New();

  Status FlushAll();

  /// Installs the WAL before-image hook, invoked on the first MarkDirty
  /// of each clean cached page.
  void SetModifyHook(ModifyHook hook) { modify_hook_ = std::move(hook); }

  /// Drops a cached page (after its disk content was externally restored,
  /// e.g. by transaction abort). The frame must be unpinned.
  void Invalidate(PageId id);

  size_t frame_count() const { return frames_.size(); }
  DiskManager* disk() const { return disk_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }

 private:
  friend class PageGuard;
  void OnFirstModify(PageId id, const char* before) {
    if (modify_hook_) modify_hook_(id, before);
  }
  struct Frame {
    PageId page = kInvalidPageId;
    int pins = 0;
    bool dirty = false;
    std::unique_ptr<char[]> data;
  };

  void Unpin(PageId id);
  /// Frame to (re)use; evicts the LRU unpinned frame if necessary.
  StatusOr<Frame*> GetVictim();
  void Touch(size_t frame_idx);

  DiskManager* disk_;
  ModifyHook modify_hook_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> table_;
  std::list<size_t> lru_;  // most-recent at front; only unpinned matter
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace coral

#endif  // CORAL_STORAGE_BUFFER_POOL_H_
