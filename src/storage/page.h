// Copyright (c) 1993-style CORAL reproduction authors.
// Slotted pages: the on-disk unit of the storage manager that substitutes
// for EXODUS (paper §2, §3.2; see DESIGN.md §4 for the substitution
// rationale). Records are variable length; slots grow from the front,
// record data from the back.

#ifndef CORAL_STORAGE_PAGE_H_
#define CORAL_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <span>

namespace coral {

inline constexpr size_t kPageSize = 8192;
using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xffffffffu;

/// Record id: page + slot.
struct Rid {
  PageId page = kInvalidPageId;
  uint16_t slot = 0;
  bool valid() const { return page != kInvalidPageId; }
  bool operator==(const Rid& o) const {
    return page == o.page && slot == o.slot;
  }
};

/// A view over one 8 KiB frame laid out as a slotted page.
///
/// Layout:
///   [ PageHeader | slot directory (4B each, growing) ... free ...
///     record data (growing downward) ]
/// A slot offset of 0 marks a deleted record (data space is not reclaimed
/// until compaction, which we do opportunistically on insert).
class SlottedPage {
 public:
  struct Header {
    uint32_t page_type;     // kHeapPage / kBTreeLeaf / kBTreeInternal / ...
    uint16_t slot_count;
    uint16_t free_end;      // offset where record data begins
    PageId next_page;       // heap chain / leaf chain
    uint32_t aux;           // type-specific (e.g. B-tree level)
  };
  static constexpr uint32_t kHeapPage = 1;
  static constexpr uint32_t kBTreeLeaf = 2;
  static constexpr uint32_t kBTreeInternal = 3;
  static constexpr uint32_t kMetaPage = 4;

  explicit SlottedPage(char* frame) : frame_(frame) {}

  /// Formats a fresh page.
  void Init(uint32_t page_type);

  Header* header() { return reinterpret_cast<Header*>(frame_); }
  const Header* header() const {
    return reinterpret_cast<const Header*>(frame_);
  }

  uint16_t slot_count() const { return header()->slot_count; }
  PageId next_page() const { return header()->next_page; }
  void set_next_page(PageId p) { header()->next_page = p; }

  /// Space available for one more record of `size` bytes (slot included).
  bool HasRoomFor(size_t size) const;

  /// Appends a record; returns its slot or -1 if full.
  int Insert(std::span<const char> record);

  /// Marks a slot deleted. Returns false if already deleted / invalid.
  bool Delete(uint16_t slot);

  /// Record bytes for `slot`; empty span when deleted.
  std::span<const char> Get(uint16_t slot) const;

  /// Bytes of free space remaining.
  size_t FreeSpace() const;

  /// Rewrites the page dropping deleted slots' data (slot ids change!).
  /// Only safe for structures that re-derive slot ids (B-tree nodes).
  void Compact();

  char* raw() { return frame_; }
  const char* raw() const { return frame_; }

 private:
  struct SlotEntry {
    uint16_t offset;  // 0 = deleted
    uint16_t length;
  };
  SlotEntry* slot_entry(uint16_t i) {
    return reinterpret_cast<SlotEntry*>(frame_ + sizeof(Header)) + i;
  }
  const SlotEntry* slot_entry(uint16_t i) const {
    return reinterpret_cast<const SlotEntry*>(frame_ + sizeof(Header)) + i;
  }

  char* frame_;
};

}  // namespace coral

#endif  // CORAL_STORAGE_PAGE_H_
