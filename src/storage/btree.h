// Copyright (c) 1993-style CORAL reproduction authors.
// B+-tree index over persistent relations (paper §3.3: "B-tree indices
// for persistent relations are currently available"). Keys are
// order-preserving byte strings (serialized primitive values); values are
// record ids. Non-unique: duplicate keys are stored adjacently. Deletion
// is by tombstone-free entry removal without rebalancing (underflowing
// nodes are tolerated), a common simplification for single-user systems.

#ifndef CORAL_STORAGE_BTREE_H_
#define CORAL_STORAGE_BTREE_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/storage/buffer_pool.h"
#include "src/storage/page.h"

namespace coral {

/// Sorted-node view over a raw page. Entries are (key, uint64 value);
/// the directory keeps key order, entry data grows from the page end.
class BTreeNode {
 public:
  struct Header {
    uint32_t page_type;  // kBTreeLeaf / kBTreeInternal
    uint16_t count;
    uint16_t free_end;
    PageId next;        // leaf chain; kInvalidPageId for internal
    uint32_t leftmost;  // internal nodes: child for keys < first key
  };

  explicit BTreeNode(char* frame) : frame_(frame) {}

  void Init(uint32_t type);
  Header* header() { return reinterpret_cast<Header*>(frame_); }
  const Header* header() const {
    return reinterpret_cast<const Header*>(frame_);
  }
  bool is_leaf() const {
    return header()->page_type == SlottedPage::kBTreeLeaf;
  }
  uint16_t count() const { return header()->count; }

  std::string_view KeyAt(uint16_t i) const;
  uint64_t ValueAt(uint16_t i) const;

  /// First position with key >= `key`.
  uint16_t LowerBound(std::string_view key) const;
  /// First position with key > `key`.
  uint16_t UpperBound(std::string_view key) const;

  bool HasRoomFor(size_t key_len) const;
  /// Inserts at position `pos` (caller keeps order). False if full.
  bool InsertAt(uint16_t pos, std::string_view key, uint64_t value);
  void RemoveAt(uint16_t pos);
  /// Rebuilds the node dropping dead space.
  void Compact();

  char* raw() { return frame_; }

 private:
  uint16_t* dir() {
    return reinterpret_cast<uint16_t*>(frame_ + sizeof(Header));
  }
  const uint16_t* dir() const {
    return reinterpret_cast<const uint16_t*>(frame_ + sizeof(Header));
  }

  char* frame_;
};

/// Packs a Rid into the 64-bit value payload.
inline uint64_t PackRid(Rid rid) {
  return (static_cast<uint64_t>(rid.page) << 16) | rid.slot;
}
inline Rid UnpackRid(uint64_t v) {
  return Rid{static_cast<PageId>(v >> 16), static_cast<uint16_t>(v & 0xffff)};
}

class BTree {
 public:
  /// Creates an empty tree (a single leaf root).
  static StatusOr<BTree> Create(BufferPool* pool);
  /// Opens an existing tree.
  static BTree Open(BufferPool* pool, PageId root) {
    return BTree(pool, root);
  }

  PageId root() const { return root_; }

  Status Insert(std::string_view key, Rid rid);
  /// Removes one (key, rid) entry; false if absent.
  StatusOr<bool> Delete(std::string_view key, Rid rid);
  /// All rids stored under exactly `key`.
  Status Lookup(std::string_view key, std::vector<Rid>* out) const;
  /// All (key, rid) pairs with lo <= key <= hi, in key order.
  Status Range(std::string_view lo, std::string_view hi,
               std::vector<std::pair<std::string, Rid>>* out) const;

  /// Number of entries (full scan; for tests).
  StatusOr<size_t> CountEntries() const;

 private:
  BTree(BufferPool* pool, PageId root) : pool_(pool), root_(root) {}

  struct SplitInfo {
    bool happened = false;
    std::string separator;  // first key of the right node
    PageId right = kInvalidPageId;
  };

  Status InsertRec(PageId page, std::string_view key, uint64_t value,
                   SplitInfo* split);
  Status SplitNode(BTreeNode* node, PageGuard* guard, SplitInfo* split);
  /// Leftmost leaf whose keys may contain `key`.
  StatusOr<PageId> DescendToLeaf(std::string_view key) const;

  BufferPool* pool_;
  PageId root_;
};

}  // namespace coral

#endif  // CORAL_STORAGE_BTREE_H_
