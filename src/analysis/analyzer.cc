#include "src/analysis/analyzer.h"

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/absint.h"

namespace coral {

namespace analysis {

bool IsBuiltinLiteral(const Literal& lit, const AnalyzerOptions& opts,
                      const DepGraph& graph) {
  if (graph.IsDerived(lit.pred_ref())) return false;
  if (IsOperatorSymbol(lit.pred)) return true;
  return opts.is_builtin != nullptr &&
         opts.is_builtin(lit.pred->name,
                         static_cast<uint32_t>(lit.args.size()));
}

namespace {

/// Export validity (CRL111, CRL112): each exported query form must name a
/// predicate defined in the module, with an adornment whose length is the
/// predicate's arity. These were CORAL's original load-time errors; they
/// now flow through the common diagnostics channel.
void CheckExports(const ModuleDecl& mod, DiagnosticList* out) {
  for (const QueryFormDecl& form : mod.exports) {
    bool defined = false;
    for (const Rule& r : mod.rules) {
      if (r.head.pred != form.pred) continue;
      defined = true;
      if (r.head.args.size() != form.adornment.size()) {
        Diagnostic d;
        d.severity = DiagSeverity::kError;
        d.code = diag::kExportArityMismatch;
        d.module_name = mod.name;
        d.pred = r.head.pred_ref().ToString();
        d.loc = form.loc.valid() ? form.loc : mod.loc;
        d.message = "export adornment '" + form.adornment +
                    "' does not match arity of " +
                    r.head.pred_ref().ToString();
        out->Add(std::move(d));
        break;
      }
    }
    if (!defined) {
      Diagnostic d;
      d.severity = DiagSeverity::kError;
      d.code = diag::kExportUndefined;
      d.module_name = mod.name;
      d.pred = form.pred->name;
      d.loc = form.loc.valid() ? form.loc : mod.loc;
      d.message =
          "exports undefined predicate '" + form.pred->name + "'";
      out->Add(std::move(d));
    }
  }
}

/// Arity consistency (CRL110): the same predicate name used with several
/// arities almost always indicates a typo'd argument list. Distinct
/// arities are distinct predicates, so this is a warning, not an error.
void CheckArities(const ModuleDecl& mod, const AnalyzerOptions& opts,
                  const DepGraph& graph, DiagnosticList* out) {
  struct Use {
    std::set<uint32_t> arities;
    SourceLoc first_loc;
  };
  std::map<std::string, Use> uses;
  auto record = [&](const Literal& lit) {
    if (IsBuiltinLiteral(lit, opts, graph)) return;
    Use& u = uses[lit.pred->name];
    u.arities.insert(static_cast<uint32_t>(lit.args.size()));
    if (!u.first_loc.valid()) u.first_loc = lit.loc;
  };
  for (const Rule& r : mod.rules) {
    record(r.head);
    for (const Literal& lit : r.body) record(lit);
  }
  for (const QueryFormDecl& form : mod.exports) {
    auto it = uses.find(form.pred->name);
    if (it != uses.end()) {
      it->second.arities.insert(
          static_cast<uint32_t>(form.adornment.size()));
    }
  }
  for (const auto& [name, use] : uses) {
    if (use.arities.size() < 2) continue;
    std::string list;
    for (uint32_t a : use.arities) {
      if (!list.empty()) list += ", ";
      list += std::to_string(a);
    }
    Diagnostic d;
    d.severity = DiagSeverity::kWarning;
    d.code = diag::kArityConflict;
    d.module_name = mod.name;
    d.pred = name;
    d.loc = use.first_loc;
    d.message = "predicate '" + name + "' is used with arities " + list +
                "; these are distinct predicates";
    out->Add(std::move(d));
  }
}

/// Which annotation family a flag-style annotation belongs to; members of
/// one family overwrite each other in the parsed ModuleDecl.
const char* FamilyOf(const std::string& name, std::string* value) {
  if (name == "pipelining" || name == "materialized" ||
      name == "materialization") {
    *value = name == "pipelining" ? "pipelined" : "materialized";
    return "evaluation mode";
  }
  if (name == "naive" || name == "bsn" || name == "basic_seminaive" ||
      name == "psn" || name == "predicate_seminaive") {
    *value = name == "naive" ? "naive"
             : (name == "psn" || name == "predicate_seminaive")
                 ? "psn"
                 : "bsn";
    return "fixpoint";
  }
  if (name == "no_rewriting" || name == "magic" ||
      name == "supplementary_magic" || name == "sup_magic" ||
      name == "factoring" || name == "context_factoring") {
    *value = name == "no_rewriting" ? "none"
             : name == "magic"      ? "magic"
             : (name == "factoring" || name == "context_factoring")
                 ? "factoring"
                 : "sup_magic";
    return "rewriting";
  }
  return nullptr;
}

SourceLoc AnnotationLoc(const ModuleDecl& mod, const std::string& name) {
  for (const AnnotationUse& a : mod.annotations) {
    if (a.name == name) return a.loc;
  }
  return mod.loc;
}

/// Annotation validation (CRL130-CRL132). Contradictory combinations that
/// the rewriter would reject at first query become load-time errors;
/// same-family annotations overriding earlier ones, and declarations
/// targeting predicates the module never mentions, are warnings.
void CheckAnnotations(const ModuleDecl& mod, DiagnosticList* out) {
  // CRL130: combinations with no valid compilation.
  if (mod.ordered_search && mod.rewrite == RewriteKind::kNone) {
    Diagnostic d;
    d.severity = DiagSeverity::kError;
    d.code = diag::kAnnotationConflict;
    d.module_name = mod.name;
    d.loc = AnnotationLoc(mod, "ordered_search");
    d.message =
        "@ordered_search requires a magic rewriting (paper §5.4.1); "
        "remove @no_rewriting";
    out->Add(std::move(d));
  }
  if (mod.reorder_joins && mod.no_reorder_joins) {
    Diagnostic d;
    d.severity = DiagSeverity::kWarning;
    d.code = diag::kAnnotationConflict;
    d.module_name = mod.name;
    d.loc = AnnotationLoc(mod, "no_reorder_joins");
    d.message =
        "@reorder_joins conflicts with @no_reorder_joins; join "
        "reordering stays off for this module";
    out->Add(std::move(d));
  }
  if (mod.parallel && mod.eval_mode == EvalMode::kPipelined) {
    Diagnostic d;
    d.severity = DiagSeverity::kError;
    d.code = diag::kAnnotationConflict;
    d.module_name = mod.name;
    d.loc = AnnotationLoc(mod, "parallel");
    d.message =
        "@parallel conflicts with @pipelining: pipelined (top-down) "
        "modules evaluate rules in declaration order and stay sequential";
    out->Add(std::move(d));
  }
  if (mod.parallel && mod.parallel_threads != -1 &&
      (mod.parallel_threads < 1 || mod.parallel_threads > kMaxParallelThreads)) {
    Diagnostic d;
    d.severity = DiagSeverity::kError;
    d.code = diag::kBadParallelThreads;
    d.module_name = mod.name;
    d.loc = AnnotationLoc(mod, "parallel");
    d.message = "@parallel thread count must be between 1 and " +
                std::to_string(kMaxParallelThreads) + " (got " +
                std::to_string(mod.parallel_threads) + ")";
    out->Add(std::move(d));
  }
  // Combinations the engine silently evaluates sequentially (correct but
  // the annotation has no effect) — surfaced as CRL131 warnings.
  if (mod.parallel && mod.eval_mode == EvalMode::kMaterialized) {
    const char* why = nullptr;
    if (mod.ordered_search) {
      why = "@ordered_search schedules subgoals context-wise";
    } else if (mod.fixpoint == FixpointKind::kPredicateSemiNaive) {
      why = "@psn relies on immediate availability within a pass";
    } else if (mod.explain) {
      why = "@explain records derivations in evaluation order";
    }
    if (why != nullptr) {
      Diagnostic d;
      d.severity = DiagSeverity::kWarning;
      d.code = diag::kAnnotationIgnored;
      d.module_name = mod.name;
      d.loc = AnnotationLoc(mod, "parallel");
      d.message = std::string("@parallel is ignored: ") + why +
                  "; the module evaluates sequentially";
      out->Add(std::move(d));
    }
  }
  // CRL134: @profile on a pipelined module records only rule activation
  // and answer counts (no fixpoint, delta, or iteration statistics).
  if (mod.profile && mod.eval_mode == EvalMode::kPipelined) {
    Diagnostic d;
    d.severity = DiagSeverity::kWarning;
    d.code = diag::kProfilePipelined;
    d.module_name = mod.name;
    d.loc = AnnotationLoc(mod, "profile");
    d.message =
        "@profile on a @pipelining module records rule activations and "
        "answers only; fixpoint iteration statistics are not collected";
    out->Add(std::move(d));
  }
  if (mod.rewrite == RewriteKind::kFactoring && mod.save_module) {
    Diagnostic d;
    d.severity = DiagSeverity::kError;
    d.code = diag::kAnnotationConflict;
    d.module_name = mod.name;
    d.loc = AnnotationLoc(mod, "save_module");
    d.message =
        "@factoring is incompatible with @save_module: factored answers "
        "are only attributable to a single seed per call";
    out->Add(std::move(d));
  }

  // CRL131: a later same-family annotation silently overrides an earlier
  // one (last writer wins in the parser).
  struct Last {
    std::string name;
    std::string value;
    SourceLoc loc;
  };
  std::map<std::string, Last> last_of_family;
  for (const AnnotationUse& a : mod.annotations) {
    std::string value;
    const char* family = FamilyOf(a.name, &value);
    if (family == nullptr) continue;
    auto it = last_of_family.find(family);
    if (it != last_of_family.end()) {
      Diagnostic d;
      d.severity = DiagSeverity::kWarning;
      d.code = diag::kAnnotationIgnored;
      d.module_name = mod.name;
      d.loc = it->second.loc;
      d.message =
          it->second.value == value
              ? "duplicate " + std::string(family) + " annotation @" +
                    a.name
              : "@" + it->second.name + " is overridden by the later @" +
                    a.name + " (" + family + " annotations pick one " +
                    "strategy; the last wins)";
      out->Add(std::move(d));
    }
    last_of_family[family] = Last{a.name, value, a.loc};
  }

  // CRL132: declarations that name a predicate the module never mentions.
  std::set<std::string> mentioned;
  for (const Rule& r : mod.rules) {
    mentioned.insert(r.head.pred->name);
    for (const Literal& lit : r.body) mentioned.insert(lit.pred->name);
  }
  auto check_target = [&](Symbol pred, const SourceLoc& loc,
                          const std::string& which) {
    if (pred == nullptr || mentioned.count(pred->name) > 0) return;
    Diagnostic d;
    d.severity = DiagSeverity::kWarning;
    d.code = diag::kAnnotationTarget;
    d.module_name = mod.name;
    d.pred = pred->name;
    d.loc = loc.valid() ? loc : mod.loc;
    d.message = which + " targets predicate '" + pred->name +
                "', which no rule in this module mentions";
    out->Add(std::move(d));
  };
  for (Symbol pred : mod.multiset_preds) {
    check_target(pred, AnnotationLoc(mod, "multiset"), "@multiset");
  }
  for (const AggSelDecl& decl : mod.agg_selections) {
    check_target(decl.pred, decl.loc, "@aggregate_selection");
  }
  for (const IndexDecl& decl : mod.indexes) {
    check_target(decl.pred, decl.loc, "@make_index");
  }
}

/// Stratification (CRL140). Reported as a warning, not an error: magic
/// rewriting can both break stratification (the rewriter then protects
/// the affected predicates) and leave it intact, and @ordered_search
/// handles modularly stratified programs — the rewriter keeps the
/// authoritative query-time error. Pipelined modules evaluate negation
/// top-down and are exempt.
void CheckStratification(const ModuleDecl& mod, const DepGraph& graph,
                         DiagnosticList* out) {
  if (mod.eval_mode != EvalMode::kMaterialized) return;
  if (mod.ordered_search) return;
  if (graph.stratified()) return;
  Diagnostic d;
  d.severity = DiagSeverity::kWarning;
  d.code = diag::kNotStratified;
  d.module_name = mod.name;
  d.loc = mod.loc;
  d.message = "module is not stratified (" + graph.violation() +
              "); if magic rewriting cannot isolate the offending "
              "predicates, queries will fail — consider @ordered_search";
  out->Add(std::move(d));
}

}  // namespace

}  // namespace analysis

DiagnosticList AnalyzeModule(const ModuleDecl& mod,
                             const AnalyzerOptions& opts) {
  DiagnosticList out;
  DepGraph graph = DepGraph::Build(mod.rules);
  analysis::CheckExports(mod, &out);
  analysis::CheckArities(mod, opts, graph, &out);
  analysis::CheckAnnotations(mod, &out);
  analysis::CheckStratification(mod, graph, &out);
  analysis::CheckSafety(mod, opts, graph, &out);
  analysis::CheckDeadCode(mod, opts, graph, &out);
  absint::CheckAbstractDomains(mod, opts, graph, &out);
  absint::CheckIndexDecls(mod, opts, graph, &out);
  out.Normalize();
  return out;
}

DiagnosticList AnalyzeProgram(const Program& prog,
                              const AnalyzerOptions& opts) {
  DiagnosticList out;
  for (const ModuleDecl& mod : prog.modules) {
    out.Append(AnalyzeModule(mod, opts));
  }
  return out;
}

}  // namespace coral
