// Copyright (c) 1993-style CORAL reproduction authors.
// Static semantic analysis of parsed modules, run at module-load time,
// before rewriting and evaluation. The paper's §9 lessons note that CORAL
// had no compile-time checking and faults surfaced at run time; this pass
// front-loads the checks that need no data: rule safety under the
// left-to-right sideways information passing used by the rewriter,
// builtin binding modes, arity consistency, export validity, dead code,
// annotation sanity, and stratification.

#ifndef CORAL_ANALYSIS_ANALYZER_H_
#define CORAL_ANALYSIS_ANALYZER_H_

#include <functional>
#include <string>

#include "src/analysis/diagnostics.h"
#include "src/lang/ast.h"
#include "src/rewrite/depgraph.h"

namespace coral {

struct AnalyzerOptions {
  /// True when name/arity is a registered builtin predicate. Injected by
  /// the caller (the Database knows its BuiltinRegistry) so the analyzer
  /// does not depend on the evaluation core.
  std::function<bool(const std::string& name, uint32_t arity)> is_builtin;

  /// Warnings-as-errors: callers use DiagnosticList::ShouldReject(strict)
  /// to decide whether to refuse the module.
  bool strict = false;
};

/// Runs every check over one module. Diagnostics come back sorted by
/// source position.
DiagnosticList AnalyzeModule(const ModuleDecl& mod,
                             const AnalyzerOptions& opts);

/// Analyzes every module of a parsed program (top-level facts and queries
/// have no static checks beyond parsing).
DiagnosticList AnalyzeProgram(const Program& prog,
                              const AnalyzerOptions& opts);

namespace analysis {

/// True when `lit` resolves to a builtin or comparison operator rather
/// than a stored or derived predicate. A module-defined predicate shadows
/// a builtin of the same name/arity.
bool IsBuiltinLiteral(const Literal& lit, const AnalyzerOptions& opts,
                      const DepGraph& graph);

/// Rule safety + binding-mode analysis (CRL101-CRL105): propagates export
/// adornments through rule bodies with the rewriter's left-to-right SIP
/// and reports head variables, negated subgoals, comparisons and builtins
/// that evaluation would reach with unbound arguments.
void CheckSafety(const ModuleDecl& mod, const AnalyzerOptions& opts,
                 const DepGraph& graph, DiagnosticList* out);

/// Dead-code warnings (CRL120-CRL121): derived predicates unreachable
/// from any export, and named variables occurring exactly once in a rule.
void CheckDeadCode(const ModuleDecl& mod, const AnalyzerOptions& opts,
                   const DepGraph& graph, DiagnosticList* out);

}  // namespace analysis

}  // namespace coral

#endif  // CORAL_ANALYSIS_ANALYZER_H_
