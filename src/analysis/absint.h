// Copyright (c) 1993-style CORAL reproduction authors.
// Abstract interpretation over the rule dependency graph: one fixpoint per
// module computes, per predicate argument, groundness and constructor
// shapes, and per predicate a coarse cardinality class (src/analysis/
// domains.h). The same engine serves two masters: the semantic analyzer
// (diagnostics CRL2xx — provably empty rules, unindexable join probes,
// functor growth through recursion) and the query optimizer (join
// reordering and automatic index selection in src/rewrite/rewriter.cc and
// src/core/module_eval.cc).

#ifndef CORAL_ANALYSIS_ABSINT_H_
#define CORAL_ANALYSIS_ABSINT_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/analysis/diagnostics.h"
#include "src/analysis/domains.h"
#include "src/lang/ast.h"
#include "src/rewrite/depgraph.h"

namespace coral::absint {

struct AbsIntOptions {
  /// True when name/arity is a registered builtin predicate (same contract
  /// as AnalyzerOptions::is_builtin). Null treats only operators builtin.
  std::function<bool(const std::string& name, uint32_t arity)> is_builtin;

  /// Cardinality class of a base (non-derived, non-builtin) predicate —
  /// the rewriter supplies real relation sizes here. Null: kMany.
  std::function<Card(const PredRef&)> base_card;

  /// Call-side bound argument positions seeding the analysis: export
  /// adornments at lint time, the compiled query form's bound positions at
  /// rewrite time. Propagated to non-exported predicates by a left-to-
  /// right boundness fixpoint before the main analysis runs.
  std::unordered_map<PredRef, std::vector<bool>, PredRefHash> seeds;

  /// Predicates the engine populates directly rather than through rules
  /// (the magic seed, Ordered Search done-markers): assumed non-empty
  /// with ground arguments.
  std::unordered_set<PredRef, PredRefHash> assumed_facts;
};

/// Per-rule findings from the transfer function.
struct RuleFacts {
  /// Type/groundness meet hit bottom: the rule can never produce a fact.
  bool dead = false;
  std::string dead_reason;  // human text for the CRL201 message

  /// Head builds a strictly larger term around a value bound by a
  /// same-SCC body literal (CRL203 candidate).
  bool functor_growth = false;
  int growth_pos = -1;  // head argument position exhibiting growth

  /// No literal order gives this probe a bound argument (CRL202).
  bool cross_product = false;
  int cross_literal = -1;  // body index of the unindexable literal
};

class AnalysisResult {
 public:
  /// Facts for every derived predicate (base predicates are absent).
  std::unordered_map<PredRef, PredFacts, PredRefHash> preds;
  /// Parallel to the analyzed rule vector.
  std::vector<RuleFacts> rules;
  /// May-bound call-side positions per predicate (seeds + propagation).
  std::unordered_map<PredRef, std::vector<bool>, PredRefHash> bound;

  const PredFacts* Find(const PredRef& p) const;

  /// Cardinality class of any predicate: derived facts, else the base
  /// callback, else kMany.
  Card CardOf(const PredRef& p) const;

  /// True when call sites may bind argument `pos` of `p`.
  bool IsBoundPos(const PredRef& p, uint32_t pos) const;

  /// Human-readable per-predicate summary, sorted by name — the "inferred
  /// modes" block of plan listings. Each line:
  ///   p/2: mode=g?, types=(int|atom, top), card=many, recursive
  std::string Summary() const;

  std::function<Card(const PredRef&)> base_card;  // copied from options
};

/// Runs the combined groundness/type/cardinality fixpoint over `rules`
/// (SCC-ordered via `graph`, which must have been built from the same
/// rule vector).
AnalysisResult AnalyzeRules(const std::vector<Rule>& rules,
                            const DepGraph& graph,
                            const AbsIntOptions& opts);

/// Analyzer wiring: runs AnalyzeRules over the module (seeded from export
/// adornments) and reports CRL201 (type conflict proves a rule empty),
/// CRL202 (join probe with no bound arguments under any order) and CRL203
/// (functor growth through recursion with no structural descent).
void CheckAbstractDomains(const ModuleDecl& mod, const AnalyzerOptions& opts,
                          const DepGraph& graph, DiagnosticList* out);

/// @make_index validation: CRL135 (pattern arity does not match the
/// predicate's use), CRL136 (duplicate identical index), CRL137 (note:
/// automatic index selection already creates the requested index).
void CheckIndexDecls(const ModuleDecl& mod, const AnalyzerOptions& opts,
                     const DepGraph& graph, DiagnosticList* out);

}  // namespace coral::absint

#endif  // CORAL_ANALYSIS_ABSINT_H_
