#include "src/analysis/absint.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/rewrite/existential.h"

namespace coral::absint {
namespace {

/// A stored or derived relation (not an operator / builtin). Base
/// relations consulted outside the module count: they multiply join
/// cardinality and their probes want indexes.
bool IsRelationLiteral(const Literal& lit, const AbsIntOptions& opts,
                       const DepGraph& graph) {
  if (graph.IsDerived(lit.pred_ref())) return true;
  if (IsOperatorSymbol(lit.pred)) return false;
  return opts.is_builtin == nullptr ||
         !opts.is_builtin(lit.pred->name,
                          static_cast<uint32_t>(lit.args.size()));
}

/// Whether the engine's unifier could equate values of these type sets.
/// Numeric kinds are widened into one class so the analysis never claims
/// a rule dead on an int-vs-double disagreement.
TypeSet WidenNumeric(TypeSet t) {
  return (t & kTNumeric) != 0 ? (t | kTNumeric) : t;
}

TypeSet TypeOfTerm(const Arg* t, const std::vector<ArgFacts>* vars) {
  switch (t->kind()) {
    case ArgKind::kInt: return kTInt;
    case ArgKind::kDouble: return kTDouble;
    case ArgKind::kString: return kTString;
    case ArgKind::kBigInt: return kTBigInt;
    case ArgKind::kSet: return kTSet;
    case ArgKind::kUser: return kTUser;
    case ArgKind::kVariable: {
      if (vars == nullptr) return kTypeTop;
      uint32_t slot = ArgCast<Variable>(t)->slot();
      return slot < vars->size() ? (*vars)[slot].types : kTypeTop;
    }
    case ArgKind::kAtomOrFunctor: {
      const auto* f = ArgCast<FunctorArg>(t);
      if (f->name() == kGroupMarker) return kTSet;
      if (f->arity() == 0) return f->name() == "[]" ? kTList : kTAtom;
      if (f->arity() == 2 && f->name() == ".") return kTList;
      return kTFunctor;
    }
  }
  return kTypeTop;
}

Ground TermGroundness(const Arg* t, const std::vector<ArgFacts>& vars) {
  if (t->IsGround()) return Ground::kGround;
  if (t->kind() == ArgKind::kVariable) {
    uint32_t slot = ArgCast<Variable>(t)->slot();
    return slot < vars.size() ? vars[slot].ground : Ground::kTop;
  }
  // Non-ground composite: ground iff every contained variable is proven
  // ground; definitely nonground if some variable definitely stays free.
  std::set<uint32_t> slots;
  CollectVars(t, &slots);
  bool saw_top = false;
  for (uint32_t s : slots) {
    Ground g = s < vars.size() ? vars[s].ground : Ground::kTop;
    if (g == Ground::kNonGround) return Ground::kNonGround;
    if (g != Ground::kGround) saw_top = true;
  }
  return saw_top ? Ground::kTop : Ground::kGround;
}

/// Mutable per-rule variable facts during the transfer function.
struct VarState {
  std::vector<ArgFacts> v;
  const Rule* rule = nullptr;
  bool changed = false;
  bool dead = false;
  std::string dead_reason;
};

std::string VarName(const Rule& r, uint32_t slot) {
  if (slot < r.var_names.size() && !r.var_names[slot].empty()) {
    return r.var_names[slot];
  }
  return "_" + std::to_string(slot);
}

void MeetVar(uint32_t slot, ArgFacts f, VarState* s) {
  if (slot >= s->v.size()) return;
  f.types = WidenNumeric(f.types);
  const ArgFacts old = s->v[slot];
  ArgFacts nw{MeetGround(old.ground, f.ground), old.types & f.types};
  if (nw.types == kTypeBottom && old.types != kTypeBottom &&
      f.types != kTypeBottom && !s->dead) {
    s->dead = true;
    s->dead_reason = "variable '" + VarName(*s->rule, slot) +
                     "' admits no type (" + TypeSetToString(old.types) +
                     " vs " + TypeSetToString(f.types) + ")";
  }
  if (!(nw == old)) {
    s->v[slot] = nw;
    s->changed = true;
  }
}

/// All variables inside `t` are bound to ground values.
void GroundVarsIn(const Arg* t, VarState* s) {
  std::set<uint32_t> slots;
  CollectVars(t, &slots);
  for (uint32_t slot : slots) {
    MeetVar(slot, ArgFacts{Ground::kGround, kTypeTop}, s);
  }
}

/// Constrains the variables of body term `t` by the facts `f` describing
/// the values arriving at its position. Stored values that are nonground
/// unify with anything on instantiation, so only a kGround source
/// constrains groundness; types always constrain the top-level
/// constructor (a stored bare variable contributes kTypeTop).
void ConstrainTerm(const Arg* t, const ArgFacts& f, VarState* s) {
  if (f.ground == Ground::kBottom) return;  // unreached source: no info
  Ground eff = f.ground == Ground::kGround ? Ground::kGround : Ground::kTop;
  if (t->kind() == ArgKind::kVariable) {
    MeetVar(ArgCast<Variable>(t)->slot(), ArgFacts{eff, f.types}, s);
    return;
  }
  TypeSet tt = WidenNumeric(TypeOfTerm(t, &s->v));
  TypeSet ft = WidenNumeric(f.types);
  if ((tt & ft) == 0 && ft != kTypeBottom && tt != kTypeBottom && !s->dead) {
    s->dead = true;
    s->dead_reason = "term '" + t->ToString() +
                     "' can never match stored values of type " +
                     TypeSetToString(f.types);
  }
  if (t->IsGround()) return;
  if (eff == Ground::kGround) GroundVarsIn(t, s);
}

/// True when `sub` occurs strictly inside composite term `t`.
bool StrictSubterm(const Arg* sub, const Arg* t) {
  if (t->kind() != ArgKind::kAtomOrFunctor) return false;
  const auto* f = ArgCast<FunctorArg>(t);
  for (const Arg* a : f->args()) {
    if (a->Equals(*sub)) return true;
    if (StrictSubterm(sub, a)) return true;
  }
  return false;
}

struct Ctx {
  const std::vector<Rule>& rules;
  const DepGraph& graph;
  const AbsIntOptions& opts;
  AnalysisResult* res;
};

/// One application of rule `ridx`'s transfer function against the current
/// predicate facts. Returns true when the head predicate's facts grew;
/// `*rule_card` receives the rule's cardinality contribution.
bool TransferRule(const Ctx& c, uint32_t ridx, Card* rule_card) {
  const Rule& r = c.rules[ridx];
  const PredRef h = r.head.pred_ref();

  VarState s;
  s.rule = &r;
  s.v.assign(r.var_count, ArgFacts{Ground::kTop, kTypeTop});

  // Call-side bound head positions receive ground query constants.
  auto bit = c.res->bound.find(h);
  if (bit != c.res->bound.end()) {
    for (uint32_t i = 0; i < r.head.args.size() && i < bit->second.size();
         ++i) {
      if (bit->second[i]) GroundVarsIn(r.head.args[i], &s);
    }
  }

  // Variables never touched by a positive body literal stay unbound at
  // runtime and are stored as variables — definitely nonground.
  std::vector<uint8_t> binder(r.var_count, 0);
  for (const Literal& lit : r.body) {
    if (lit.negated) continue;
    for (uint32_t v : VarsOfLiteral(lit)) {
      if (v < binder.size()) binder[v] = 1;
    }
  }

  bool changed = true;
  for (int guard = 0; changed && guard < 64; ++guard) {
    s.changed = false;
    for (const Literal& lit : r.body) {
      if (lit.negated) continue;
      const PredRef q = lit.pred_ref();
      if (c.graph.IsDerived(q)) {
        const PredFacts& f = c.res->preds[q];
        for (uint32_t j = 0; j < lit.args.size() && j < f.args.size(); ++j) {
          ConstrainTerm(lit.args[j], f.args[j], &s);
        }
      } else if (IsOperatorSymbol(lit.pred) && lit.pred->name == "=" &&
                 lit.args.size() == 2) {
        // Unification: each side constrains the other.
        const Arg* a = lit.args[0];
        const Arg* b = lit.args[1];
        ArgFacts fa{TermGroundness(a, s.v), TypeOfTerm(a, &s.v)};
        ArgFacts fb{TermGroundness(b, s.v), TypeOfTerm(b, &s.v)};
        ConstrainTerm(a, fb, &s);
        ConstrainTerm(b, fa, &s);
      }
      // Other builtins and base relations: no static constraint.
    }
    changed = s.changed;
  }

  RuleFacts& rf = c.res->rules[ridx];
  if (s.dead) {
    if (!rf.dead) {
      rf.dead = true;
      rf.dead_reason = s.dead_reason;
    }
    *rule_card = Card::kEmpty;
    return false;
  }

  Card card = Card::kOne;  // facts contribute a singleton
  for (const Literal& lit : r.body) {
    if (lit.negated) continue;
    if (!IsRelationLiteral(lit, c.opts, c.graph)) continue;
    card = MulCard(card, c.res->CardOf(lit.pred_ref()));
  }
  *rule_card = card;
  if (card == Card::kEmpty) return false;  // body unreachable this round

  for (uint32_t slot = 0; slot < s.v.size(); ++slot) {
    if (binder[slot] == 0 && s.v[slot].ground == Ground::kTop) {
      s.v[slot].ground = Ground::kNonGround;
    }
  }

  PredFacts& pf = c.res->preds[h];
  bool grew = false;
  for (uint32_t i = 0; i < r.head.args.size() && i < pf.args.size(); ++i) {
    ArgFacts af{TermGroundness(r.head.args[i], s.v),
                TypeOfTerm(r.head.args[i], &s.v)};
    ArgFacts nw = JoinArg(pf.args[i], af);
    if (!(nw == pf.args[i])) {
      pf.args[i] = nw;
      grew = true;
    }
  }
  return grew;
}

/// Must-bound call-side positions: starts optimistic (all bound) for
/// every predicate that has a call site or an export seed, then
/// intersects over call sites under the left-to-right SIP until stable.
void BoundFixpoint(const Ctx& c) {
  std::unordered_set<PredRef, PredRefHash> restricted;
  for (const auto& [p, b] : c.opts.seeds) restricted.insert(p);
  for (const Rule& r : c.rules) {
    for (const Literal& lit : r.body) {
      if (c.graph.IsDerived(lit.pred_ref())) {
        restricted.insert(lit.pred_ref());
      }
    }
  }
  for (const PredRef& p : c.graph.derived()) {
    c.res->bound[p].assign(p.arity, restricted.count(p) > 0);
  }
  for (const auto& [p, seed] : c.opts.seeds) {
    auto it = c.res->bound.find(p);
    if (it == c.res->bound.end()) continue;
    for (uint32_t i = 0; i < it->second.size() && i < seed.size(); ++i) {
      it->second[i] = it->second[i] && seed[i];
    }
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& r : c.rules) {
      const PredRef h = r.head.pred_ref();
      std::set<uint32_t> B;
      const std::vector<bool>& hb = c.res->bound[h];
      for (uint32_t i = 0; i < r.head.args.size() && i < hb.size(); ++i) {
        if (hb[i]) CollectVars(r.head.args[i], &B);
      }
      for (const Literal& lit : r.body) {
        const PredRef q = lit.pred_ref();
        if (c.graph.IsDerived(q)) {
          std::vector<bool>& bq = c.res->bound[q];
          for (uint32_t j = 0; j < lit.args.size() && j < bq.size(); ++j) {
            if (bq[j] && !TermBound(lit.args[j], B)) {
              bq[j] = false;
              changed = true;
            }
          }
        }
        if (!lit.negated) {
          for (uint32_t v : VarsOfLiteral(lit)) B.insert(v);
        }
      }
    }
  }
}

/// CRL203 candidates: a recursive rule whose head wraps a value produced
/// by a same-SCC body literal in a bigger term grows the domain without
/// bound, unless a bound argument descends structurally (the classic
/// list-consuming shape app([H|T],L,[H|R]) :- app(T,L,R) under app(bbf)).
void DetectFunctorGrowth(const Ctx& c) {
  for (uint32_t ridx = 0; ridx < c.rules.size(); ++ridx) {
    const Rule& r = c.rules[ridx];
    const PredRef h = r.head.pred_ref();
    auto pit = c.res->preds.find(h);
    if (pit == c.res->preds.end() || !pit->second.recursive) continue;

    std::vector<const Literal*> rec_lits;
    std::set<uint32_t> rec_vars;
    for (const Literal& lit : r.body) {
      if (lit.negated) continue;
      const PredRef q = lit.pred_ref();
      if (!c.graph.IsDerived(q) || !c.graph.SameScc(h, q)) continue;
      rec_lits.push_back(&lit);
      for (uint32_t v : VarsOfLiteral(lit)) rec_vars.insert(v);
    }
    if (rec_lits.empty()) continue;

    int candidate = -1;
    for (uint32_t i = 0; i < r.head.args.size(); ++i) {
      const Arg* t = r.head.args[i];
      if (t->IsGround() || t->kind() != ArgKind::kAtomOrFunctor) continue;
      if (ArgCast<FunctorArg>(t)->name() == kGroupMarker) continue;
      std::set<uint32_t> vars;
      CollectVars(t, &vars);
      bool wraps = false;
      for (uint32_t v : vars) {
        if (rec_vars.count(v) > 0) {
          wraps = true;
          break;
        }
      }
      if (wraps) {
        candidate = static_cast<int>(i);
        break;
      }
    }
    if (candidate < 0) continue;

    bool descent = false;
    for (const Literal* lit : rec_lits) {
      if (lit->pred_ref() != h) continue;  // direct recursion only
      for (uint32_t j = 0; j < lit->args.size() && j < r.head.args.size();
           ++j) {
        if (!c.res->IsBoundPos(h, j)) continue;
        if (StrictSubterm(lit->args[j], r.head.args[j])) {
          descent = true;
          break;
        }
      }
      if (descent) break;
    }
    if (descent) continue;

    RuleFacts& rf = c.res->rules[ridx];
    rf.functor_growth = true;
    rf.growth_pos = candidate;
    pit->second.functor_growth = true;
  }
  for (auto& [p, pf] : c.res->preds) {
    if (pf.functor_growth && pf.card != Card::kEmpty) {
      pf.card = Card::kUnbounded;
    }
  }
}

/// CRL202: greedy bound-args-first simulation per rule; if even the best
/// schedulable relation literal has zero bound arguments (after the first
/// scan literal), the join is a cross product no index can support.
void DetectCrossProducts(const Ctx& c) {
  for (uint32_t ridx = 0; ridx < c.rules.size(); ++ridx) {
    const Rule& r = c.rules[ridx];
    size_t rel_count = 0;
    for (const Literal& lit : r.body) {
      if (!lit.negated && !lit.args.empty() &&
          IsRelationLiteral(lit, c.opts, c.graph)) {
        ++rel_count;
      }
    }
    if (rel_count < 2) continue;

    std::set<uint32_t> B;
    const PredRef h = r.head.pred_ref();
    auto hb = c.res->bound.find(h);
    if (hb != c.res->bound.end()) {
      for (uint32_t i = 0; i < r.head.args.size() && i < hb->second.size();
           ++i) {
        if (hb->second[i]) CollectVars(r.head.args[i], &B);
      }
    }

    std::vector<uint32_t> remaining;
    for (uint32_t i = 0; i < r.body.size(); ++i) remaining.push_back(i);
    size_t scheduled_rels = 0;
    auto is_rel = [&](const Literal& lit) {
      return !lit.negated && IsRelationLiteral(lit, c.opts, c.graph);
    };
    while (!remaining.empty()) {
      // Fully bound tests (builtins, comparisons, negation) run eagerly.
      bool again = true;
      while (again) {
        again = false;
        for (auto it = remaining.begin(); it != remaining.end(); ++it) {
          const Literal& lit = r.body[*it];
          if (is_rel(lit)) continue;
          bool all_bound = true;
          for (const Arg* a : lit.args) {
            if (!TermBound(a, B)) {
              all_bound = false;
              break;
            }
          }
          if (!all_bound) continue;
          if (!lit.negated) {
            for (uint32_t v : VarsOfLiteral(lit)) B.insert(v);
          }
          remaining.erase(it);
          again = true;
          break;
        }
      }
      int best = -1;
      int best_bound = -1;
      for (uint32_t idx : remaining) {
        const Literal& lit = r.body[idx];
        if (!is_rel(lit)) continue;
        int bound_args = 0;
        for (const Arg* a : lit.args) {
          if (TermBound(a, B)) ++bound_args;
        }
        if (bound_args > best_bound) {
          best_bound = bound_args;
          best = static_cast<int>(idx);
        }
      }
      if (best < 0) break;  // only unbound tests left (safety's concern)
      const Literal& chosen = r.body[best];
      if (scheduled_rels > 0 && best_bound == 0 && !chosen.args.empty()) {
        RuleFacts& rf = c.res->rules[ridx];
        rf.cross_product = true;
        rf.cross_literal = best;
        break;
      }
      for (uint32_t v : VarsOfLiteral(chosen)) B.insert(v);
      remaining.erase(
          std::find(remaining.begin(), remaining.end(),
                    static_cast<uint32_t>(best)));
      ++scheduled_rels;
    }
  }
}

}  // namespace

const PredFacts* AnalysisResult::Find(const PredRef& p) const {
  auto it = preds.find(p);
  return it == preds.end() ? nullptr : &it->second;
}

Card AnalysisResult::CardOf(const PredRef& p) const {
  auto it = preds.find(p);
  if (it != preds.end()) return it->second.card;
  if (base_card != nullptr) return base_card(p);
  return Card::kMany;
}

bool AnalysisResult::IsBoundPos(const PredRef& p, uint32_t pos) const {
  auto it = bound.find(p);
  return it != bound.end() && pos < it->second.size() && it->second[pos];
}

std::string AnalysisResult::Summary() const {
  std::map<std::string, const PredFacts*> ordered;
  for (const auto& [p, f] : preds) ordered[p.ToString()] = &f;
  std::string out;
  for (const auto& [name, f] : ordered) {
    out += name + ": mode=" + f->ModeString() + ", types=(";
    for (size_t i = 0; i < f->args.size(); ++i) {
      if (i > 0) out += ", ";
      out += TypeSetToString(f->args[i].types);
    }
    out += "), card=" + std::string(CardName(f->card));
    if (f->recursive) out += ", recursive";
    if (f->functor_growth) out += ", functor-growth";
    out += '\n';
  }
  return out;
}

AnalysisResult AnalyzeRules(const std::vector<Rule>& rules,
                            const DepGraph& graph,
                            const AbsIntOptions& opts) {
  AnalysisResult res;
  res.base_card = opts.base_card;
  res.rules.assign(rules.size(), RuleFacts{});
  for (const PredRef& p : graph.derived()) {
    res.preds[p].args.assign(p.arity, ArgFacts{});
  }

  Ctx c{rules, graph, opts, &res};
  BoundFixpoint(c);

  // Engine-fed predicates start non-empty with ground arguments.
  for (const PredRef& p : opts.assumed_facts) {
    auto it = res.preds.find(p);
    if (it == res.preds.end()) continue;
    for (ArgFacts& a : it->second.args) {
      a = JoinArg(a, ArgFacts{Ground::kGround, kTypeTop});
    }
  }

  // Recursion: every member of a multi-predicate SCC, plus self-loops.
  for (const Rule& r : rules) {
    const PredRef h = r.head.pred_ref();
    for (const Literal& lit : r.body) {
      const PredRef q = lit.pred_ref();
      if (graph.IsDerived(q) && graph.SameScc(h, q)) {
        res.preds[h].recursive = true;
      }
    }
  }
  for (const auto& scc : graph.sccs()) {
    if (scc.size() < 2) continue;
    for (const PredRef& p : scc) res.preds[p].recursive = true;
  }

  // Rules grouped under their head's SCC; fixpoint per SCC in topo order.
  std::vector<std::vector<uint32_t>> scc_rules(graph.sccs().size());
  for (uint32_t i = 0; i < rules.size(); ++i) {
    scc_rules[graph.SccOf(rules[i].head.pred_ref())].push_back(i);
  }
  std::vector<Card> rule_card(rules.size(), Card::kEmpty);

  for (uint32_t si = 0; si < graph.sccs().size(); ++si) {
    bool changed = true;
    for (int guard = 0; changed && guard < 1000; ++guard) {
      changed = false;
      for (uint32_t ridx : scc_rules[si]) {
        Card rc = Card::kEmpty;
        if (TransferRule(c, ridx, &rc)) changed = true;
        if (rc != rule_card[ridx]) {
          rule_card[ridx] = rc;
          changed = true;
        }
      }
      for (const PredRef& p : graph.sccs()[si]) {
        Card card = opts.assumed_facts.count(p) > 0 ? Card::kOne
                                                    : Card::kEmpty;
        for (uint32_t ridx : scc_rules[si]) {
          if (rules[ridx].head.pred_ref() == p) {
            card = AddCard(card, rule_card[ridx]);
          }
        }
        PredFacts& pf = res.preds[p];
        if (pf.recursive && card != Card::kEmpty) {
          card = JoinCard(card, Card::kMany);
        }
        if (card != pf.card) {
          pf.card = card;
          changed = true;
        }
      }
    }
  }

  DetectFunctorGrowth(c);
  DetectCrossProducts(c);
  return res;
}

void CheckAbstractDomains(const ModuleDecl& mod, const AnalyzerOptions& opts,
                          const DepGraph& graph, DiagnosticList* out) {
  AbsIntOptions ai;
  ai.is_builtin = opts.is_builtin;
  // Export adornments restrict stored facts only when a magic rewriting
  // propagates the query's bindings; under @no_rewriting the full
  // relations are computed regardless of the calling convention.
  if (mod.rewrite != RewriteKind::kNone) {
    for (const QueryFormDecl& form : mod.exports) {
      PredRef p{form.pred, static_cast<uint32_t>(form.adornment.size())};
      std::vector<bool> b(form.adornment.size(), false);
      for (size_t i = 0; i < form.adornment.size(); ++i) {
        b[i] = form.adornment[i] == 'b' || form.adornment[i] == 'B';
      }
      auto it = ai.seeds.find(p);
      if (it == ai.seeds.end()) {
        ai.seeds.emplace(p, std::move(b));
      } else {
        for (size_t i = 0; i < it->second.size() && i < b.size(); ++i) {
          it->second[i] = it->second[i] && b[i];
        }
      }
    }
  }

  AnalysisResult res = AnalyzeRules(mod.rules, graph, ai);
  for (uint32_t ridx = 0; ridx < mod.rules.size(); ++ridx) {
    const Rule& r = mod.rules[ridx];
    const RuleFacts& rf = res.rules[ridx];
    const std::string head = r.head.pred_ref().ToString();
    if (rf.dead) {
      Diagnostic d;
      d.severity = DiagSeverity::kWarning;
      d.code = diag::kTypeConflictEmpty;
      d.module_name = mod.name;
      d.pred = head;
      d.rule_index = static_cast<int>(ridx);
      d.loc = r.loc;
      d.message = "type analysis proves this rule can never derive a "
                  "fact: " + rf.dead_reason;
      out->Add(std::move(d));
    }
    if (rf.cross_product && rf.cross_literal >= 0 &&
        rf.cross_literal < static_cast<int>(r.body.size())) {
      const Literal& lit = r.body[rf.cross_literal];
      Diagnostic d;
      d.severity = DiagSeverity::kWarning;
      d.code = diag::kUnindexableProbe;
      d.module_name = mod.name;
      d.pred = lit.pred_ref().ToString();
      d.rule_index = static_cast<int>(ridx);
      d.loc = lit.loc.valid() ? lit.loc : r.loc;
      d.message = "join probe on '" + lit.pred_ref().ToString() +
                  "' has no bound argument under any literal order "
                  "(cross product); no index can support it";
      out->Add(std::move(d));
    }
    if (rf.functor_growth && rf.growth_pos >= 0) {
      const auto* f = ArgCast<FunctorArg>(r.head.args[rf.growth_pos]);
      Diagnostic d;
      d.severity = DiagSeverity::kWarning;
      d.code = diag::kInfiniteDomain;
      d.module_name = mod.name;
      d.pred = head;
      d.rule_index = static_cast<int>(ridx);
      d.loc = r.loc;
      d.message = "recursion grows argument " +
                  std::to_string(rf.growth_pos + 1) + " of '" + head +
                  "' through functor '" + f->name() +
                  "' with no bound argument descending structurally; the "
                  "inferred domain is infinite and evaluation may not "
                  "terminate";
      out->Add(std::move(d));
    }
  }
}

void CheckIndexDecls(const ModuleDecl& mod, const AnalyzerOptions& opts,
                     const DepGraph& graph, DiagnosticList* out) {
  (void)opts;
  (void)graph;
  // Arities each predicate name is actually used with.
  std::map<std::string, std::set<uint32_t>> arities;
  auto record = [&](const Literal& lit) {
    arities[lit.pred->name].insert(static_cast<uint32_t>(lit.args.size()));
  };
  for (const Rule& r : mod.rules) {
    record(r.head);
    for (const Literal& lit : r.body) record(lit);
  }

  // Export-bound head variables seed the probe simulation for CRL137.
  std::unordered_map<PredRef, std::vector<bool>, PredRefHash> seeds;
  if (mod.rewrite != RewriteKind::kNone) {
    for (const QueryFormDecl& form : mod.exports) {
      PredRef p{form.pred, static_cast<uint32_t>(form.adornment.size())};
      std::vector<bool> b(form.adornment.size(), false);
      for (size_t i = 0; i < form.adornment.size(); ++i) {
        b[i] = form.adornment[i] == 'b' || form.adornment[i] == 'B';
      }
      auto it = seeds.find(p);
      if (it == seeds.end()) {
        seeds.emplace(p, std::move(b));
      } else {
        for (size_t i = 0; i < it->second.size() && i < b.size(); ++i) {
          it->second[i] = it->second[i] && b[i];
        }
      }
    }
  }

  std::map<std::string, SourceLoc> seen;
  for (const IndexDecl& decl : mod.indexes) {
    if (decl.pred == nullptr) continue;
    const std::string& name = decl.pred->name;
    auto ait = arities.find(name);
    if (ait == arities.end()) continue;  // CRL132 reports unknown targets
    const uint32_t arity = static_cast<uint32_t>(decl.pattern.size());

    if (ait->second.count(arity) == 0) {
      std::string used;
      for (uint32_t a : ait->second) {
        if (!used.empty()) used += ", ";
        used += name + "/" + std::to_string(a);
      }
      Diagnostic d;
      d.severity = DiagSeverity::kWarning;
      d.code = diag::kIndexArity;
      d.module_name = mod.name;
      d.pred = name + "/" + std::to_string(arity);
      d.loc = decl.loc.valid() ? decl.loc : mod.loc;
      d.message = "@make_index pattern for '" + name + "' has arity " +
                  std::to_string(arity) + ", but the module uses " + used +
                  "; the index can never match";
      out->Add(std::move(d));
      continue;
    }

    std::string fp = name + "/" + std::to_string(arity);
    if (decl.argument_form) {
      std::vector<uint32_t> cols = decl.cols;
      std::sort(cols.begin(), cols.end());
      fp += ":cols";
      for (uint32_t col : cols) fp += ":" + std::to_string(col);
    } else {
      fp += ":pat:";
      for (const Arg* a : decl.pattern) fp += a->ToString() + ",";
      fp += "keys";
      for (uint32_t k : decl.key_slots) fp += ":" + std::to_string(k);
    }
    auto [sit, inserted] = seen.emplace(fp, decl.loc);
    if (!inserted) {
      Diagnostic d;
      d.severity = DiagSeverity::kWarning;
      d.code = diag::kDuplicateIndex;
      d.module_name = mod.name;
      d.pred = name + "/" + std::to_string(arity);
      d.loc = decl.loc.valid() ? decl.loc : mod.loc;
      d.message = "duplicate @make_index on '" + name + "/" +
                  std::to_string(arity) +
                  "': identical key columns were already declared" +
                  (sit->second.valid()
                       ? " at " + sit->second.ToString()
                       : "") +
                  "; the duplicate has no effect";
      out->Add(std::move(d));
      continue;
    }

    // CRL137: the optimizer's automatic index selection plans an index
    // per join probe pattern; if some rule probes this predicate with
    // exactly these columns bound, the declaration is redundant.
    if (!decl.argument_form || decl.cols.empty()) continue;
    std::set<uint32_t> want(decl.cols.begin(), decl.cols.end());
    bool covered = false;
    for (const Rule& r : mod.rules) {
      std::set<uint32_t> B;
      auto hseed = seeds.find(r.head.pred_ref());
      if (hseed != seeds.end()) {
        for (uint32_t i = 0;
             i < r.head.args.size() && i < hseed->second.size(); ++i) {
          if (hseed->second[i]) CollectVars(r.head.args[i], &B);
        }
      }
      for (const Literal& lit : r.body) {
        if (!lit.negated && lit.pred->name == name &&
            lit.args.size() == arity) {
          std::set<uint32_t> bound_cols;
          for (uint32_t j = 0; j < lit.args.size(); ++j) {
            if (TermBound(lit.args[j], B)) bound_cols.insert(j);
          }
          if (bound_cols == want) {
            covered = true;
            break;
          }
        }
        if (!lit.negated) {
          for (uint32_t v : VarsOfLiteral(lit)) B.insert(v);
        }
      }
      if (covered) break;
    }
    if (covered) {
      std::string cols;
      for (uint32_t col : want) {
        if (!cols.empty()) cols += ", ";
        cols += std::to_string(col + 1);
      }
      Diagnostic d;
      d.severity = DiagSeverity::kNote;
      d.code = diag::kIndexAutoCovered;
      d.module_name = mod.name;
      d.pred = name + "/" + std::to_string(arity);
      d.loc = decl.loc.valid() ? decl.loc : mod.loc;
      d.message = "automatic index selection already creates an index on "
                  "argument(s) " + cols + " of '" + name + "/" +
                  std::to_string(arity) +
                  "'; this @make_index is redundant unless "
                  "auto-optimization is disabled";
      out->Add(std::move(d));
    }
  }
}

}  // namespace coral::absint
