// Dead-code warnings (CRL120, CRL121).
//
// CRL120: a derived predicate unreachable from every exported query form
// can never be evaluated — modules are queried only through their exports
// (paper §5) — so its rules are dead weight, usually a renamed or typo'd
// predicate. Reachability follows head -> body edges (negated and
// aggregated goals included). Modules without exports are skipped: no
// root set exists to measure against.
//
// CRL121: a named variable occurring exactly once in a rule joins with
// nothing and constrains nothing — the classic typo detector. The
// underscore convention opts out, and facts are exempt (a variable in a
// fact is universally quantified; paper §3.1).

#include <deque>
#include <map>
#include <unordered_set>

#include "src/analysis/analyzer.h"
#include "src/rewrite/existential.h"

namespace coral {
namespace analysis {

namespace {

void CountVars(const Arg* term, std::map<uint32_t, int>* counts) {
  switch (term->kind()) {
    case ArgKind::kVariable:
      ++(*counts)[ArgCast<Variable>(term)->slot()];
      break;
    case ArgKind::kAtomOrFunctor: {
      const auto* f = ArgCast<FunctorArg>(term);
      for (const Arg* a : f->args()) CountVars(a, counts);
      break;
    }
    case ArgKind::kSet: {
      const auto* s = ArgCast<SetArg>(term);
      for (const Arg* e : s->elems()) CountVars(e, counts);
      break;
    }
    default:
      break;
  }
}

void CheckDeadPredicates(const ModuleDecl& mod, const DepGraph& graph,
                         DiagnosticList* out) {
  if (mod.exports.empty()) return;

  std::unordered_set<PredRef, PredRefHash> reachable;
  std::deque<PredRef> work;
  auto visit = [&](const PredRef& p) {
    if (graph.IsDerived(p) && reachable.insert(p).second) {
      work.push_back(p);
    }
  };
  for (const QueryFormDecl& form : mod.exports) {
    visit(PredRef{form.pred,
                  static_cast<uint32_t>(form.adornment.size())});
  }
  while (!work.empty()) {
    PredRef p = work.front();
    work.pop_front();
    for (const Rule& r : mod.rules) {
      if (!(r.head.pred_ref() == p)) continue;
      for (const Literal& lit : r.body) visit(lit.pred_ref());
    }
  }

  std::unordered_set<PredRef, PredRefHash> flagged;
  for (size_t i = 0; i < mod.rules.size(); ++i) {
    const PredRef head = mod.rules[i].head.pred_ref();
    if (reachable.count(head) > 0 || !flagged.insert(head).second) {
      continue;
    }
    Diagnostic d;
    d.severity = DiagSeverity::kWarning;
    d.code = diag::kDeadPredicate;
    d.module_name = mod.name;
    d.pred = head.ToString();
    d.rule_index = static_cast<int>(i);
    d.loc = mod.rules[i].loc;
    d.message = "predicate " + head.ToString() +
                " is defined but unreachable from any export";
    out->Add(std::move(d));
  }
}

void CheckSingletons(const ModuleDecl& mod, DiagnosticList* out) {
  for (size_t ri = 0; ri < mod.rules.size(); ++ri) {
    const Rule& r = mod.rules[ri];
    if (r.is_fact()) continue;
    std::map<uint32_t, int> counts;
    for (const Arg* a : r.head.args) CountVars(a, &counts);
    for (const Literal& lit : r.body) {
      for (const Arg* a : lit.args) CountVars(a, &counts);
    }
    for (const auto& [slot, n] : counts) {
      if (n != 1) continue;
      if (slot >= r.var_names.size()) continue;
      const std::string& name = r.var_names[slot];
      if (name.empty() || name[0] == '_') continue;
      Diagnostic d;
      d.severity = DiagSeverity::kWarning;
      d.code = diag::kSingletonVar;
      d.module_name = mod.name;
      d.pred = r.head.pred_ref().ToString();
      d.rule_index = static_cast<int>(ri);
      d.loc = r.loc;
      d.message = "variable '" + name +
                  "' occurs only once in this rule; use '_' if the "
                  "argument is intentionally ignored";
      out->Add(std::move(d));
    }
  }
}

}  // namespace

void CheckDeadCode(const ModuleDecl& mod, const AnalyzerOptions& opts,
                   const DepGraph& graph, DiagnosticList* out) {
  (void)opts;
  CheckDeadPredicates(mod, graph, out);
  CheckSingletons(mod, out);
}

}  // namespace analysis
}  // namespace coral
