// Copyright (c) 1993-style CORAL reproduction authors.
// Abstract domains for the program analysis framework (src/analysis/
// absint.*). Three small lattices capture what the optimizer wants to
// know before evaluation starts: groundness of each predicate argument
// (drives join ordering and index selection — LDL++ showed mode inference
// can replace most hand annotations), the constructor shapes that can
// reach an argument (catches joins that are provably empty and functor
// growth through recursion), and a coarse cardinality class per predicate
// (the join reorderer's cost signal).

#ifndef CORAL_ANALYSIS_DOMAINS_H_
#define CORAL_ANALYSIS_DOMAINS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace coral::absint {

// --------------------------------------------------------------------
// Groundness lattice:   kBottom  <  kGround, kNonGround  <  kTop
// kBottom  = position never receives a value (predicate unreached),
// kGround  = every value reaching the position is variable-free,
// kNonGround = every value contains at least one variable,
// kTop     = both kinds of values can arrive.
// --------------------------------------------------------------------

enum class Ground : uint8_t { kBottom = 0, kGround, kNonGround, kTop };

/// Least upper bound (accumulating possible behaviors across rules).
Ground JoinGround(Ground a, Ground b);

/// Greatest lower bound (intersecting constraints on one variable: a
/// value bound by two sources satisfies both, so ground wins over top).
Ground MeetGround(Ground a, Ground b);

/// One-letter rendering used in inferred mode strings: 'g' ground,
/// 'n' nonground, '?' top, '.' bottom (unreached).
char GroundChar(Ground g);
const char* GroundName(Ground g);

// --------------------------------------------------------------------
// Type / functor-shape domain: a bitset of constructor classes. Join is
// union, meet is intersection; an empty meet on a reachable position
// proves the join can never succeed (diagnostic CRL201).
// --------------------------------------------------------------------

using TypeSet = uint32_t;

inline constexpr TypeSet kTInt = 1u << 0;
inline constexpr TypeSet kTDouble = 1u << 1;
inline constexpr TypeSet kTString = 1u << 2;
inline constexpr TypeSet kTBigInt = 1u << 3;
inline constexpr TypeSet kTAtom = 1u << 4;
inline constexpr TypeSet kTFunctor = 1u << 5;  // f/n, n > 0 (non-list)
inline constexpr TypeSet kTList = 1u << 6;     // '.'/2 cells and []
inline constexpr TypeSet kTSet = 1u << 7;      // set-grouping results
inline constexpr TypeSet kTUser = 1u << 8;     // user-defined ADTs

inline constexpr TypeSet kTypeBottom = 0;
inline constexpr TypeSet kTypeTop = (1u << 9) - 1;
inline constexpr TypeSet kTNumeric = kTInt | kTDouble | kTBigInt;

/// "int|atom", "top", "none".
std::string TypeSetToString(TypeSet t);

// --------------------------------------------------------------------
// Cardinality classes: a coarse per-predicate size estimate. Facts give
// kOne/kFew; joins multiply; recursion promotes to kMany; recursion that
// builds bigger terms each round (functor growth) promotes to
// kUnbounded — a non-termination risk under free seeds (CRL203).
// --------------------------------------------------------------------

enum class Card : uint8_t { kEmpty = 0, kOne, kFew, kMany, kUnbounded };

/// Least upper bound (max).
Card JoinCard(Card a, Card b);
/// Size class of a join/cross product of two sources.
Card MulCard(Card a, Card b);
/// Size class of a union of two disjoint sources (rule contributions):
/// like join, but two non-empty singletons make kFew.
Card AddCard(Card a, Card b);
const char* CardName(Card c);

// --------------------------------------------------------------------
// Per-argument and per-predicate facts.
// --------------------------------------------------------------------

struct ArgFacts {
  Ground ground = Ground::kBottom;
  TypeSet types = kTypeBottom;

  bool operator==(const ArgFacts& o) const {
    return ground == o.ground && types == o.types;
  }
};

/// Join (across rules / derivations reaching the same position).
ArgFacts JoinArg(const ArgFacts& a, const ArgFacts& b);
/// Meet (constraints on one variable from several binding sources).
ArgFacts MeetArg(const ArgFacts& a, const ArgFacts& b);

struct PredFacts {
  std::vector<ArgFacts> args;
  Card card = Card::kEmpty;
  bool recursive = false;      // member of a cyclic SCC
  bool functor_growth = false; // recursion constructs strictly larger terms

  /// Inferred mode string, e.g. "gn?" — one GroundChar per argument.
  std::string ModeString() const;
};

}  // namespace coral::absint

#endif  // CORAL_ANALYSIS_DOMAINS_H_
