// Rule safety and builtin binding-mode analysis (CRL101-CRL105).
//
// Classic range restriction ("every head variable appears in a positive
// body literal") is too strict for CORAL: an exported query form like
// status(bf) guarantees the first head argument is bound by the caller,
// and magic rewriting propagates those bindings into the rules — so
//   status(X, rich) :- not broke(X).
// is perfectly safe under status(bf). This pass therefore reproduces the
// rewriter's adornment propagation (left-to-right SIP, as in
// src/rewrite/adorn.cc): starting from the exported adornments, it walks
// each rule body left to right tracking which variables are bound,
// derives call adornments for body predicates, and analyzes every
// (predicate, adornment) pair reachable this way.
//
// A second, order-insensitive fixpoint ("eventually bound") separates
// hard errors from reorderable warnings: a variable no positive goal ever
// binds is an error (CRL101/102/103), while one bound only by a later
// goal is a warning (CRL104) — evaluation as written would fault, but
// moving the goal (or @reorder_joins) fixes it.

#include <deque>
#include <map>
#include <set>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/rewrite/existential.h"

namespace coral {
namespace analysis {

namespace {

/// Functors EvalArith evaluates; their variables are inputs.
bool IsArithName(const std::string& n) {
  return n == "+" || n == "-" || n == "*" || n == "/" || n == "mod" ||
         n == "min" || n == "max" || n == "abs";
}

bool IsArithExpr(const Arg* t) {
  if (t->kind() != ArgKind::kAtomOrFunctor) return false;
  const auto* f = ArgCast<FunctorArg>(t);
  return f->arity() > 0 && IsArithName(f->name());
}

/// Binding modes of the standard builtins: alternative sets of argument
/// positions that must be bound for the call to be evaluable; on success
/// a builtin grounds all its arguments. An entry with a single empty set
/// has no instantiation requirements.
struct ModeInfo {
  std::vector<std::vector<uint32_t>> in_sets;
  const char* usage;
};

const ModeInfo* FindMode(const std::string& name, uint32_t arity) {
  static const std::map<std::pair<std::string, uint32_t>, ModeInfo>
      kModes = {
          {{"append", 3}, {{{0, 1}, {2}}, "append(+,+,-) or append(-,-,+)"}},
          {{"member", 2}, {{{1}}, "member(-,+)"}},
          {{"length", 2}, {{{0}}, "length(+,-)"}},
          {{"between", 3}, {{{0, 1}}, "between(+,+,-)"}},
          {{"functor", 3}, {{{0}, {1, 2}}, "functor(+,-,-) or functor(-,+,+)"}},
          {{"arg", 3}, {{{0, 1}}, "arg(+,+,-)"}},
          {{"sort", 2}, {{{0}}, "sort(+,-)"}},
          {{"write", 1}, {{{}}, "write(?)"}},
          {{"writeln", 1}, {{{}}, "writeln(?)"}},
          {{"assert", 1}, {{{}}, "assert(?)"}},
          {{"retract", 1}, {{{}}, "retract(?)"}},
      };
  auto it = kModes.find({name, arity});
  return it == kModes.end() ? nullptr : &it->second;
}

bool ModeSatisfied(const ModeInfo& mi, const Literal& lit,
                   const std::set<uint32_t>& bound) {
  for (const std::vector<uint32_t>& ins : mi.in_sets) {
    bool ok = true;
    for (uint32_t i : ins) {
      if (i >= lit.args.size() || !TermBound(lit.args[i], bound)) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return mi.in_sets.empty();
}

/// Variables a positive goal grounds under `bound`, order-ignored:
/// relation goals ground everything; `=` grounds everything once each
/// arithmetic side is evaluable (free-free unification aliases, which is
/// binding enough for safety — non-ground facts are a feature);
/// comparisons ground nothing; builtins ground everything once a mode is
/// satisfied.
void BindEventual(const Literal& lit, const AnalyzerOptions& opts,
                  const DepGraph& graph, std::set<uint32_t>* bound,
                  bool* changed) {
  auto bind_all = [&] {
    for (uint32_t v : VarsOfLiteral(lit)) {
      if (bound->insert(v).second) *changed = true;
    }
  };
  if (lit.negated) return;
  if (!IsBuiltinLiteral(lit, opts, graph)) {
    bind_all();
    return;
  }
  if (IsOperatorSymbol(lit.pred)) {
    if (lit.pred->name != "=") return;  // comparisons are pure tests
    for (const Arg* side : lit.args) {
      if (IsArithExpr(side) && !TermBound(side, *bound)) return;
    }
    bind_all();
    return;
  }
  const ModeInfo* mi = FindMode(
      lit.pred->name, static_cast<uint32_t>(lit.args.size()));
  if (mi == nullptr || ModeSatisfied(*mi, lit, *bound)) bind_all();
}

std::set<uint32_t> EventualBound(const Rule& rule,
                                 const std::set<uint32_t>& initial,
                                 const AnalyzerOptions& opts,
                                 const DepGraph& graph) {
  std::set<uint32_t> bound = initial;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Literal& lit : rule.body) {
      BindEventual(lit, opts, graph, &bound, &changed);
    }
  }
  return bound;
}

/// Marker mixed into the dedup key for diagnostics that concern a whole
/// literal rather than one variable slot.
constexpr uint32_t kLitMarker = 0x80000000u;

constexpr size_t kMaxAdornmentsPerPred = 32;

class SafetyPass {
 public:
  SafetyPass(const ModuleDecl& mod, const AnalyzerOptions& opts,
             const DepGraph& graph, DiagnosticList* out)
      : mod_(mod), opts_(opts), graph_(graph), out_(out) {
    for (size_t i = 0; i < mod.rules.size(); ++i) {
      if (!mod.rules[i].is_fact()) {
        rules_of_[mod.rules[i].head.pred_ref()].push_back(
            static_cast<int>(i));
      }
    }
  }

  void Run() {
    // Seed the worklist. Without magic rewriting, a materialized module
    // evaluates every rule bottom-up with no binding propagation, so
    // every derived predicate is analyzed all-free. Otherwise bindings
    // flow from the exported adornments (magic rewriting and pipelined
    // evaluation both propagate them); predicates unreachable from the
    // exports never run and are left to the dead-code pass.
    bool propagates = !(mod_.rewrite == RewriteKind::kNone &&
                        mod_.eval_mode == EvalMode::kMaterialized);
    if (!propagates || mod_.exports.empty()) {
      for (const PredRef& p : graph_.derived()) {
        Enqueue(p, std::string(p.arity, 'f'));
      }
    } else {
      for (const QueryFormDecl& form : mod_.exports) {
        PredRef p{form.pred,
                  static_cast<uint32_t>(form.adornment.size())};
        Enqueue(p, form.adornment);
      }
    }
    while (!work_.empty()) {
      auto [pred, ad] = work_.front();
      work_.pop_front();
      auto it = rules_of_.find(pred);
      if (it == rules_of_.end()) continue;
      for (int ri : it->second) AnalyzeRule(ri, ad);
    }
  }

 private:
  void Enqueue(const PredRef& pred, std::string ad) {
    if (!graph_.IsDerived(pred)) return;
    std::set<std::string>& seen = seen_[pred];
    if (seen.size() >= kMaxAdornmentsPerPred) return;
    if (seen.insert(ad).second) work_.emplace_back(pred, std::move(ad));
  }

  bool Named(const Rule& r, uint32_t slot) const {
    return slot < r.var_names.size() && !r.var_names[slot].empty() &&
           r.var_names[slot][0] != '_';
  }
  std::string NameOf(const Rule& r, uint32_t slot) const {
    if (slot < r.var_names.size() && !r.var_names[slot].empty()) {
      return r.var_names[slot];
    }
    return "_v" + std::to_string(slot);
  }

  void Report(int ri, uint32_t key, const char* code, DiagSeverity sev,
              SourceLoc loc, std::string msg) {
    if (!reported_.insert({ri, key, code}).second) return;
    const Rule& r = mod_.rules[static_cast<size_t>(ri)];
    Diagnostic d;
    d.severity = sev;
    d.code = code;
    d.module_name = mod_.name;
    d.pred = r.head.pred_ref().ToString();
    d.rule_index = ri;
    d.loc = loc.valid() ? loc : r.loc;
    d.message = std::move(msg);
    out_->Add(std::move(d));
  }

  /// Unbound-variable finding for a goal with instantiation requirements:
  /// eventually-bound variables are reorderable (CRL104 warning); never-
  /// bound ones get the caller's hard code.
  void ReportUnbound(int ri, uint32_t slot, const Literal& lit,
                     const std::set<uint32_t>& eventual,
                     const char* hard_code, const std::string& what) {
    const Rule& r = mod_.rules[static_cast<size_t>(ri)];
    if (eventual.count(slot) > 0) {
      Report(ri, slot, diag::kBoundTooLate, DiagSeverity::kWarning,
             lit.loc,
             "variable '" + NameOf(r, slot) + "' in " + what + " '" +
                 lit.ToString() +
                 "' is bound only by a later goal; move the goal or "
                 "enable @reorder_joins");
      return;
    }
    DiagSeverity sev = hard_code == diag::kBuiltinMode
                           ? DiagSeverity::kWarning
                           : DiagSeverity::kError;
    Report(ri, slot, hard_code, sev, lit.loc,
           "variable '" + NameOf(r, slot) + "' in " + what + " '" +
               lit.ToString() +
               "' is not bound by any positive goal in the rule body");
  }

  void AnalyzeRule(int ri, const std::string& ad) {
    const Rule& r = mod_.rules[static_cast<size_t>(ri)];
    std::set<uint32_t> bound;
    for (size_t i = 0; i < ad.size() && i < r.head.args.size(); ++i) {
      if (ad[i] == 'b') CollectVars(r.head.args[i], &bound);
    }
    const std::set<uint32_t> eventual =
        EventualBound(r, bound, opts_, graph_);

    for (size_t li = 0; li < r.body.size(); ++li) {
      const Literal& lit = r.body[li];
      if (lit.negated) {
        // Safety for negation: every named variable must already be
        // bound, or "not p(X)" ranges over an infinite complement.
        for (uint32_t v : VarsOfLiteral(lit)) {
          if (bound.count(v) == 0 && Named(r, v)) {
            ReportUnbound(ri, v, lit, eventual, diag::kUnboundNegationVar,
                          "negated goal");
          }
        }
        // Negated derived goals are still adorned by the rewriter.
        if (graph_.IsDerived(lit.pred_ref())) {
          Enqueue(lit.pred_ref(), CallAdornment(lit, bound));
        }
        continue;  // negation binds nothing
      }
      if (IsBuiltinLiteral(lit, opts_, graph_)) {
        AnalyzeBuiltin(ri, lit, bound, eventual);
        // Assume success to avoid cascading reports downstream.
        for (uint32_t v : VarsOfLiteral(lit)) bound.insert(v);
        continue;
      }
      // Positive relation goal: derive the call adornment for derived
      // predicates (this is the left-to-right SIP), then its scan binds
      // every variable it mentions.
      if (graph_.IsDerived(lit.pred_ref())) {
        Enqueue(lit.pred_ref(), CallAdornment(lit, bound));
      }
      for (uint32_t v : VarsOfLiteral(lit)) bound.insert(v);
    }

    // Head safety (CRL101): every named head variable must be bound by
    // the body or by a 'b' position of the analyzed adornment.
    std::set<uint32_t> head_vars;
    for (const Arg* a : r.head.args) CollectVars(a, &head_vars);
    for (uint32_t v : head_vars) {
      if (bound.count(v) > 0 || !Named(r, v)) continue;
      std::string form;
      if (ad.find('b') != std::string::npos) {
        form = " under query form " + r.head.pred->name + "(" + ad + ")";
      }
      Report(ri, v, diag::kUnsafeHeadVar, DiagSeverity::kError, r.loc,
             "head variable '" + NameOf(r, v) + "' of " +
                 r.head.pred_ref().ToString() +
                 " is not bound by the rule body" + form);
    }
  }

  void AnalyzeBuiltin(int ri, const Literal& lit,
                      const std::set<uint32_t>& bound,
                      const std::set<uint32_t>& eventual) {
    if (IsOperatorSymbol(lit.pred)) {
      if (lit.pred->name == "=") {
        // Unification binds either direction (free-free aliasing
        // included); only arithmetic sides have input requirements.
        for (const Arg* side : lit.args) {
          if (!IsArithExpr(side) || TermBound(side, bound)) continue;
          std::set<uint32_t> vars;
          CollectVars(side, &vars);
          for (uint32_t v : vars) {
            if (bound.count(v) == 0 && Named(mod_.rules[ri], v)) {
              ReportUnbound(ri, v, lit, eventual,
                            diag::kUnboundBuiltinArg,
                            "arithmetic expression");
            }
          }
        }
        return;
      }
      // <, >, =<, >=, \= are pure tests over fully bound arguments.
      for (uint32_t v : VarsOfLiteral(lit)) {
        if (bound.count(v) == 0 && Named(mod_.rules[ri], v)) {
          ReportUnbound(ri, v, lit, eventual, diag::kUnboundBuiltinArg,
                        "comparison");
        }
      }
      return;
    }
    const ModeInfo* mi = FindMode(
        lit.pred->name, static_cast<uint32_t>(lit.args.size()));
    if (mi == nullptr || ModeSatisfied(*mi, lit, bound)) return;
    uint32_t key = kLitMarker | static_cast<uint32_t>(lit.loc.line);
    if (ModeSatisfied(*mi, lit, eventual)) {
      Report(ri, key, diag::kBoundTooLate, DiagSeverity::kWarning,
             lit.loc,
             "builtin goal '" + lit.ToString() +
                 "' runs before its inputs are bound (expects " +
                 mi->usage +
                 "); move the goal or enable @reorder_joins");
      return;
    }
    Report(ri, key, diag::kBuiltinMode, DiagSeverity::kWarning, lit.loc,
           "no usable binding mode for builtin goal '" + lit.ToString() +
               "' (expects " + mi->usage + ")");
  }

  static std::string CallAdornment(const Literal& lit,
                                   const std::set<uint32_t>& bound) {
    std::string ad;
    ad.reserve(lit.args.size());
    for (const Arg* a : lit.args) ad += TermBound(a, bound) ? 'b' : 'f';
    return ad;
  }

  const ModuleDecl& mod_;
  const AnalyzerOptions& opts_;
  const DepGraph& graph_;
  DiagnosticList* out_;

  std::unordered_map<PredRef, std::vector<int>, PredRefHash> rules_of_;
  std::unordered_map<PredRef, std::set<std::string>, PredRefHash> seen_;
  std::deque<std::pair<PredRef, std::string>> work_;
  std::set<std::tuple<int, uint32_t, const char*>> reported_;
};

}  // namespace

void CheckSafety(const ModuleDecl& mod, const AnalyzerOptions& opts,
                 const DepGraph& graph, DiagnosticList* out) {
  SafetyPass(mod, opts, graph, out).Run();
}

}  // namespace analysis
}  // namespace coral
