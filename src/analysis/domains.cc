#include "src/analysis/domains.h"

namespace coral::absint {

Ground JoinGround(Ground a, Ground b) {
  if (a == b) return a;
  if (a == Ground::kBottom) return b;
  if (b == Ground::kBottom) return a;
  return Ground::kTop;  // ground ∨ nonground, or anything with top
}

Ground MeetGround(Ground a, Ground b) {
  if (a == b) return a;
  if (a == Ground::kTop) return b;
  if (b == Ground::kTop) return a;
  return Ground::kBottom;  // ground ∧ nonground
}

char GroundChar(Ground g) {
  switch (g) {
    case Ground::kBottom: return '.';
    case Ground::kGround: return 'g';
    case Ground::kNonGround: return 'n';
    case Ground::kTop: return '?';
  }
  return '?';
}

const char* GroundName(Ground g) {
  switch (g) {
    case Ground::kBottom: return "unreached";
    case Ground::kGround: return "ground";
    case Ground::kNonGround: return "nonground";
    case Ground::kTop: return "any";
  }
  return "any";
}

std::string TypeSetToString(TypeSet t) {
  if (t == kTypeBottom) return "none";
  if (t == kTypeTop) return "top";
  static constexpr struct {
    TypeSet bit;
    const char* name;
  } kNames[] = {
      {kTInt, "int"},       {kTDouble, "double"}, {kTString, "string"},
      {kTBigInt, "bigint"}, {kTAtom, "atom"},     {kTFunctor, "functor"},
      {kTList, "list"},     {kTSet, "set"},       {kTUser, "user"},
  };
  std::string out;
  for (const auto& n : kNames) {
    if ((t & n.bit) == 0) continue;
    if (!out.empty()) out += '|';
    out += n.name;
  }
  return out;
}

Card JoinCard(Card a, Card b) { return a < b ? b : a; }

Card MulCard(Card a, Card b) {
  if (a == Card::kEmpty || b == Card::kEmpty) return Card::kEmpty;
  if (a == Card::kUnbounded || b == Card::kUnbounded) return Card::kUnbounded;
  if (a == Card::kOne) return b;
  if (b == Card::kOne) return a;
  if (a == Card::kMany || b == Card::kMany) return Card::kMany;
  return Card::kFew;  // few * few stays a small product class
}

Card AddCard(Card a, Card b) {
  if (a == Card::kOne && b == Card::kOne) return Card::kFew;
  return JoinCard(a, b);
}

const char* CardName(Card c) {
  switch (c) {
    case Card::kEmpty: return "empty";
    case Card::kOne: return "one";
    case Card::kFew: return "few";
    case Card::kMany: return "many";
    case Card::kUnbounded: return "unbounded";
  }
  return "many";
}

ArgFacts JoinArg(const ArgFacts& a, const ArgFacts& b) {
  return ArgFacts{JoinGround(a.ground, b.ground), a.types | b.types};
}

ArgFacts MeetArg(const ArgFacts& a, const ArgFacts& b) {
  return ArgFacts{MeetGround(a.ground, b.ground), a.types & b.types};
}

std::string PredFacts::ModeString() const {
  std::string out;
  out.reserve(args.size());
  for (const ArgFacts& a : args) out += GroundChar(a.ground);
  return out;
}

}  // namespace coral::absint
