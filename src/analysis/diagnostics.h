// Copyright (c) 1993-style CORAL reproduction authors.
// Compile-time diagnostics (paper §4, §9): the front end checks programs
// before rewriting/evaluation and reports violations with source
// positions, instead of failing deep inside the rewriter or mid-fixpoint.
// Every semantic check — rule safety, builtin binding modes, arity
// consistency, dead code, annotation validation, stratification — reports
// through this one channel; severity decides whether module loading is
// refused (errors) or merely annotated (warnings, promoted to errors
// under strict mode).

#ifndef CORAL_ANALYSIS_DIAGNOSTICS_H_
#define CORAL_ANALYSIS_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "src/lang/ast.h"

namespace coral {

enum class DiagSeverity { kError, kWarning, kNote };

const char* DiagSeverityName(DiagSeverity s);

/// Diagnostic codes, stable identifiers for tests, docs and tooling.
/// See docs/LANGUAGE.md "Diagnostics & program checks" for the catalog.
namespace diag {
inline constexpr const char* kUnsafeHeadVar = "CRL101";
inline constexpr const char* kUnboundNegationVar = "CRL102";
inline constexpr const char* kUnboundBuiltinArg = "CRL103";
inline constexpr const char* kBoundTooLate = "CRL104";
inline constexpr const char* kBuiltinMode = "CRL105";
inline constexpr const char* kArityConflict = "CRL110";
inline constexpr const char* kExportUndefined = "CRL111";
inline constexpr const char* kExportArityMismatch = "CRL112";
inline constexpr const char* kDeadPredicate = "CRL120";
inline constexpr const char* kSingletonVar = "CRL121";
inline constexpr const char* kAnnotationConflict = "CRL130";
inline constexpr const char* kAnnotationIgnored = "CRL131";
inline constexpr const char* kAnnotationTarget = "CRL132";
inline constexpr const char* kBadParallelThreads = "CRL133";
inline constexpr const char* kProfilePipelined = "CRL134";
inline constexpr const char* kIndexArity = "CRL135";
inline constexpr const char* kDuplicateIndex = "CRL136";
inline constexpr const char* kIndexAutoCovered = "CRL137";
inline constexpr const char* kNotStratified = "CRL140";
// CRL2xx: abstract-interpretation findings (src/analysis/absint.*).
inline constexpr const char* kTypeConflictEmpty = "CRL201";
inline constexpr const char* kUnindexableProbe = "CRL202";
inline constexpr const char* kInfiniteDomain = "CRL203";
}  // namespace diag

/// One finding: severity, stable code, human message, and where it is —
/// predicate, rule index within the module, and the source line/col
/// propagated from lexer tokens through the AST.
struct Diagnostic {
  DiagSeverity severity = DiagSeverity::kError;
  const char* code = "";     // "CRL101", ... (static storage)
  std::string message;
  std::string module_name;   // may be empty (top-level)
  std::string pred;          // "p/2" or empty
  int rule_index = -1;       // index into ModuleDecl::rules, -1 if n/a
  SourceLoc loc;

  /// "line 12:3: error: head variable 'Y' ... [CRL101]" — one line,
  /// grep- and editor-friendly.
  std::string ToString() const;

  /// One JSON object on one line: {"code":...,"severity":...,"file":...,
  /// "line":...,"col":...,"module":...,"pred":...,"message":...}. The
  /// file name comes from the caller (the AST records only line/col).
  std::string ToJson(const std::string& file) const;
};

/// An ordered collection of diagnostics from one analysis run.
class DiagnosticList {
 public:
  void Add(Diagnostic d) { items_.push_back(std::move(d)); }
  void Append(const DiagnosticList& other);

  bool empty() const { return items_.empty(); }
  size_t size() const { return items_.size(); }
  const std::vector<Diagnostic>& items() const { return items_; }

  size_t error_count() const;
  size_t warning_count() const;

  /// True if loading should be refused: any error, or any warning when
  /// `strict` (warnings-as-errors) is on.
  bool ShouldReject(bool strict) const;

  /// True if some diagnostic carries `code`.
  bool Has(const char* code) const;

  /// All diagnostics, one per line, in source order.
  std::string ToString() const;

  /// Only the rejecting diagnostics (errors; plus warnings when strict),
  /// one per line — the payload of the Status returned on module load.
  std::string RejectionText(bool strict) const;

  /// Orders by (line, col), keeping relative order of unlocated items.
  void SortBySource();

  /// Deterministic rendering order regardless of analysis traversal:
  /// sorts by (line, col, code, pred, message) and drops duplicates with
  /// equal (code, line, col, pred) — checks that run once per adornment
  /// or rewrite variant otherwise repeat findings in traversal order.
  void Normalize();

  /// One JSON object per line, in current order (see Diagnostic::ToJson).
  std::string ToJsonLines(const std::string& file) const;

 private:
  std::vector<Diagnostic> items_;
};

}  // namespace coral

#endif  // CORAL_ANALYSIS_DIAGNOSTICS_H_
