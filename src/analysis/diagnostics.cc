#include "src/analysis/diagnostics.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string_view>

namespace coral {

const char* DiagSeverityName(DiagSeverity s) {
  switch (s) {
    case DiagSeverity::kError: return "error";
    case DiagSeverity::kWarning: return "warning";
    case DiagSeverity::kNote: return "note";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  std::ostringstream oss;
  if (loc.valid()) oss << loc.ToString() << ": ";
  oss << DiagSeverityName(severity) << ": ";
  if (!module_name.empty()) oss << "module '" << module_name << "': ";
  oss << message;
  if (code != nullptr && code[0] != '\0') oss << " [" << code << "]";
  return oss.str();
}

namespace {

/// Minimal JSON string escaping (quotes, backslash, control chars).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(ch));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

}  // namespace

std::string Diagnostic::ToJson(const std::string& file) const {
  std::ostringstream oss;
  oss << "{\"code\":\"" << (code != nullptr ? code : "")
      << "\",\"severity\":\"" << DiagSeverityName(severity)
      << "\",\"file\":\"" << JsonEscape(file) << "\",\"line\":" << loc.line
      << ",\"col\":" << loc.col << ",\"module\":\""
      << JsonEscape(module_name) << "\",\"pred\":\"" << JsonEscape(pred)
      << "\",\"message\":\"" << JsonEscape(message) << "\"}";
  return oss.str();
}

void DiagnosticList::Append(const DiagnosticList& other) {
  items_.insert(items_.end(), other.items_.begin(), other.items_.end());
}

size_t DiagnosticList::error_count() const {
  size_t n = 0;
  for (const Diagnostic& d : items_) {
    if (d.severity == DiagSeverity::kError) ++n;
  }
  return n;
}

size_t DiagnosticList::warning_count() const {
  size_t n = 0;
  for (const Diagnostic& d : items_) {
    if (d.severity == DiagSeverity::kWarning) ++n;
  }
  return n;
}

bool DiagnosticList::ShouldReject(bool strict) const {
  for (const Diagnostic& d : items_) {
    if (d.severity == DiagSeverity::kError) return true;
    if (strict && d.severity == DiagSeverity::kWarning) return true;
  }
  return false;
}

bool DiagnosticList::Has(const char* code) const {
  for (const Diagnostic& d : items_) {
    if (d.code != nullptr && std::strcmp(d.code, code) == 0) return true;
  }
  return false;
}

std::string DiagnosticList::ToString() const {
  std::string out;
  for (const Diagnostic& d : items_) {
    out += d.ToString();
    out += '\n';
  }
  return out;
}

std::string DiagnosticList::RejectionText(bool strict) const {
  std::string out;
  for (const Diagnostic& d : items_) {
    if (d.severity == DiagSeverity::kError ||
        (strict && d.severity == DiagSeverity::kWarning)) {
      if (!out.empty()) out += '\n';
      out += d.ToString();
    }
  }
  return out;
}

void DiagnosticList::SortBySource() {
  std::stable_sort(items_.begin(), items_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.loc.line != b.loc.line) {
                       return a.loc.line < b.loc.line;
                     }
                     return a.loc.col < b.loc.col;
                   });
}

void DiagnosticList::Normalize() {
  auto code_of = [](const Diagnostic& d) {
    return d.code != nullptr ? std::string_view(d.code)
                             : std::string_view();
  };
  std::stable_sort(items_.begin(), items_.end(),
                   [&](const Diagnostic& a, const Diagnostic& b) {
                     if (a.loc.line != b.loc.line) {
                       return a.loc.line < b.loc.line;
                     }
                     if (a.loc.col != b.loc.col) return a.loc.col < b.loc.col;
                     if (code_of(a) != code_of(b)) {
                       return code_of(a) < code_of(b);
                     }
                     if (a.pred != b.pred) return a.pred < b.pred;
                     return a.message < b.message;
                   });
  items_.erase(
      std::unique(items_.begin(), items_.end(),
                  [&](const Diagnostic& a, const Diagnostic& b) {
                    return a.loc.line == b.loc.line &&
                           a.loc.col == b.loc.col &&
                           code_of(a) == code_of(b) && a.pred == b.pred;
                  }),
      items_.end());
}

std::string DiagnosticList::ToJsonLines(const std::string& file) const {
  std::string out;
  for (const Diagnostic& d : items_) {
    out += d.ToJson(file);
    out += '\n';
  }
  return out;
}

}  // namespace coral
