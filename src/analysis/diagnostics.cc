#include "src/analysis/diagnostics.h"

#include <algorithm>
#include <cstring>
#include <sstream>

namespace coral {

const char* DiagSeverityName(DiagSeverity s) {
  switch (s) {
    case DiagSeverity::kError: return "error";
    case DiagSeverity::kWarning: return "warning";
    case DiagSeverity::kNote: return "note";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  std::ostringstream oss;
  if (loc.valid()) oss << loc.ToString() << ": ";
  oss << DiagSeverityName(severity) << ": ";
  if (!module_name.empty()) oss << "module '" << module_name << "': ";
  oss << message;
  if (code != nullptr && code[0] != '\0') oss << " [" << code << "]";
  return oss.str();
}

void DiagnosticList::Append(const DiagnosticList& other) {
  items_.insert(items_.end(), other.items_.begin(), other.items_.end());
}

size_t DiagnosticList::error_count() const {
  size_t n = 0;
  for (const Diagnostic& d : items_) {
    if (d.severity == DiagSeverity::kError) ++n;
  }
  return n;
}

size_t DiagnosticList::warning_count() const {
  size_t n = 0;
  for (const Diagnostic& d : items_) {
    if (d.severity == DiagSeverity::kWarning) ++n;
  }
  return n;
}

bool DiagnosticList::ShouldReject(bool strict) const {
  for (const Diagnostic& d : items_) {
    if (d.severity == DiagSeverity::kError) return true;
    if (strict && d.severity == DiagSeverity::kWarning) return true;
  }
  return false;
}

bool DiagnosticList::Has(const char* code) const {
  for (const Diagnostic& d : items_) {
    if (d.code != nullptr && std::strcmp(d.code, code) == 0) return true;
  }
  return false;
}

std::string DiagnosticList::ToString() const {
  std::string out;
  for (const Diagnostic& d : items_) {
    out += d.ToString();
    out += '\n';
  }
  return out;
}

std::string DiagnosticList::RejectionText(bool strict) const {
  std::string out;
  for (const Diagnostic& d : items_) {
    if (d.severity == DiagSeverity::kError ||
        (strict && d.severity == DiagSeverity::kWarning)) {
      if (!out.empty()) out += '\n';
      out += d.ToString();
    }
  }
  return out;
}

void DiagnosticList::SortBySource() {
  std::stable_sort(items_.begin(), items_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.loc.line != b.loc.line) {
                       return a.loc.line < b.loc.line;
                     }
                     return a.loc.col < b.loc.col;
                   });
}

}  // namespace coral
