#include "src/lang/token.h"

namespace coral {

const char* TokenKindName(TokenKind k) {
  switch (k) {
    case TokenKind::kEof: return "end of input";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kVariable: return "variable";
    case TokenKind::kInteger: return "integer";
    case TokenKind::kDouble: return "double";
    case TokenKind::kString: return "string";
    case TokenKind::kQuotedAtom: return "quoted atom";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kBar: return "'|'";
    case TokenKind::kColonDash: return "':-'";
    case TokenKind::kQueryDash: return "'?-'";
    case TokenKind::kAt: return "'@'";
    case TokenKind::kEquals: return "'='";
    case TokenKind::kNotEquals: return "'\\='";
    case TokenKind::kLess: return "'<'";
    case TokenKind::kGreater: return "'>'";
    case TokenKind::kLessEq: return "'=<'";
    case TokenKind::kGreaterEq: return "'>='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kError: return "invalid token";
  }
  return "unknown";
}

std::string Token::Describe() const {
  std::string s = TokenKindName(kind);
  if (!text.empty()) {
    s += " '";
    s += text;
    s += "'";
  }
  return s;
}

}  // namespace coral
