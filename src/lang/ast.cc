#include "src/lang/ast.h"

#include <sstream>

namespace coral {

namespace {

bool IsOperatorName(const std::string& n) {
  return n == "=" || n == "\\=" || n == "<" || n == ">" || n == "=<" ||
         n == ">=";
}

}  // namespace

bool IsOperatorSymbol(Symbol sym) { return IsOperatorName(sym->name); }

std::string SourceLoc::ToString() const {
  if (!valid()) return "";
  return "line " + std::to_string(line) + ":" + std::to_string(col);
}

std::string Literal::ToString() const {
  std::ostringstream oss;
  if (negated) oss << "not ";
  if (args.size() == 2 && IsOperatorName(pred->name)) {
    args[0]->Print(oss);
    oss << ' ' << pred->name << ' ';
    args[1]->Print(oss);
    return oss.str();
  }
  oss << pred->name;
  if (!args.empty()) {
    oss << '(';
    for (size_t i = 0; i < args.size(); ++i) {
      if (i) oss << ',';
      args[i]->Print(oss);
    }
    oss << ')';
  }
  return oss.str();
}

std::string Rule::ToString() const {
  std::string s = head.ToString();
  if (!body.empty()) {
    s += " :- ";
    for (size_t i = 0; i < body.size(); ++i) {
      if (i) s += ", ";
      s += body[i].ToString();
    }
  }
  s += ".";
  return s;
}

std::string ModuleDecl::ToString() const {
  std::ostringstream oss;
  oss << "module " << name << ".\n";
  for (const QueryFormDecl& q : exports) {
    oss << "export " << q.pred->name << "(" << q.adornment << ").\n";
  }
  for (const Rule& r : rules) oss << r.ToString() << "\n";
  oss << "end_module.\n";
  return oss.str();
}

std::string Query::ToString() const {
  std::string s = "?- ";
  for (size_t i = 0; i < body.size(); ++i) {
    if (i) s += ", ";
    s += body[i].ToString();
  }
  s += ".";
  return s;
}

AggFn AggFnFromName(const std::string& name) {
  if (name == "min") return AggFn::kMin;
  if (name == "max") return AggFn::kMax;
  if (name == "sum") return AggFn::kSum;
  if (name == "count") return AggFn::kCount;
  if (name == "avg") return AggFn::kAvg;
  if (name == "any") return AggFn::kAny;
  return AggFn::kNone;
}

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kNone: return "none";
    case AggFn::kMin: return "min";
    case AggFn::kMax: return "max";
    case AggFn::kSum: return "sum";
    case AggFn::kCount: return "count";
    case AggFn::kAvg: return "avg";
    case AggFn::kAny: return "any";
    case AggFn::kSetOf: return "setof";
  }
  return "?";
}

}  // namespace coral
