// Copyright (c) 1993-style CORAL reproduction authors.
// Recursive-descent parser for the CORAL language: modules with exports
// and annotations, rules, facts (possibly non-ground), queries, and the
// annotation sub-language (@aggregate_selection, @make_index, and the
// module-level control annotations of paper §4/§5).

#ifndef CORAL_LANG_PARSER_H_
#define CORAL_LANG_PARSER_H_

#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/data/term_factory.h"
#include "src/lang/ast.h"
#include "src/lang/token.h"
#include "src/util/status.h"

namespace coral {

class Parser {
 public:
  Parser(std::string_view source, TermFactory* factory)
      : source_(source), factory_(factory) {}

  /// Parses a whole source file / command string.
  StatusOr<Program> ParseProgram();

  /// Parses a single term (for tests and the C++ API). Variables get
  /// slots by first occurrence; *var_count receives the number used.
  static StatusOr<const Arg*> ParseTerm(std::string_view text,
                                        TermFactory* factory,
                                        uint32_t* var_count);

 private:
  // --- token plumbing ---
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Ahead(size_t n = 1) const {
    size_t i = pos_ + n;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Bump() { if (pos_ + 1 < tokens_.size()) ++pos_; }
  bool At(TokenKind k) const { return Cur().kind == k; }
  bool Eat(TokenKind k) {
    if (!At(k)) return false;
    Bump();
    return true;
  }
  Status Expect(TokenKind k);
  Status ErrorHere(const std::string& msg) const;
  SourceLoc LocHere() const { return SourceLoc{Cur().line, Cur().col}; }

  // --- clause-scoped variable numbering ---
  void BeginClause();
  const Arg* VarFor(const std::string& name);

  // --- grammar ---
  Status ParseTopLevel(Program* out);
  Status ParseModule(Program* out);
  Status ParseModuleItem(ModuleDecl* mod);
  Status ParseExport(ModuleDecl* mod);
  Status ParseAnnotation(ModuleDecl* mod, Program* top);
  Status ParseRuleOrFact(std::vector<Rule>* rules);
  Status ParseQuery(Program* out);

  StatusOr<Literal> ParseLiteral();
  StatusOr<Literal> ParsePositiveLiteral();
  StatusOr<const Arg*> ParseTermExpr();    // +,-
  StatusOr<const Arg*> ParseTermFactor();  // *,/
  StatusOr<const Arg*> ParseTermPrimary();
  StatusOr<std::vector<const Arg*>> ParseArgList();

  StatusOr<AggSelDecl> ParseAggregateSelection();
  StatusOr<IndexDecl> ParseMakeIndex();

  std::string_view source_;
  TermFactory* factory_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;

  std::unordered_map<std::string, uint32_t> var_slots_;
  std::vector<std::string> var_names_;
};

}  // namespace coral

#endif  // CORAL_LANG_PARSER_H_
