#include "src/lang/parser.h"

#include <cstdlib>

#include "src/lang/lexer.h"
#include "src/util/logging.h"

namespace coral {

Status Parser::ErrorHere(const std::string& msg) const {
  return Status::InvalidArgument(
      "parse error at line " + std::to_string(Cur().line) + ":" +
      std::to_string(Cur().col) + ": " + msg + " (found " + Cur().Describe() +
      ")");
}

Status Parser::Expect(TokenKind k) {
  if (!Eat(k)) {
    return ErrorHere(std::string("expected ") + TokenKindName(k));
  }
  return Status::OK();
}

void Parser::BeginClause() {
  var_slots_.clear();
  var_names_.clear();
}

const Arg* Parser::VarFor(const std::string& name) {
  // Every '_' is a distinct anonymous variable.
  if (name == "_") {
    uint32_t slot = static_cast<uint32_t>(var_names_.size());
    var_names_.push_back("_" + std::to_string(slot));
    return factory_->MakeVariable(slot, var_names_.back());
  }
  auto it = var_slots_.find(name);
  uint32_t slot;
  if (it == var_slots_.end()) {
    slot = static_cast<uint32_t>(var_names_.size());
    var_slots_.emplace(name, slot);
    var_names_.push_back(name);
  } else {
    slot = it->second;
  }
  return factory_->MakeVariable(slot, name);
}

StatusOr<Program> Parser::ParseProgram() {
  Lexer lexer(source_);
  CORAL_ASSIGN_OR_RETURN(tokens_, lexer.Tokenize());
  pos_ = 0;
  Program out;
  while (!At(TokenKind::kEof)) {
    CORAL_RETURN_IF_ERROR(ParseTopLevel(&out));
  }
  return out;
}

Status Parser::ParseTopLevel(Program* out) {
  if (At(TokenKind::kIdent) && Cur().text == "module" &&
      Ahead().kind == TokenKind::kIdent) {
    return ParseModule(out);
  }
  if (At(TokenKind::kQueryDash)) {
    return ParseQuery(out);
  }
  if (At(TokenKind::kAt)) {
    return ParseAnnotation(nullptr, out);
  }
  // Top-level fact (or rule, which we reject: rules belong in modules).
  std::vector<Rule> rules;
  CORAL_RETURN_IF_ERROR(ParseRuleOrFact(&rules));
  for (Rule& r : rules) {
    if (!r.is_fact()) {
      return Status::InvalidArgument(
          "rules must appear inside a module: " + r.ToString());
    }
    out->top_facts.push_back(std::move(r));
  }
  return Status::OK();
}

Status Parser::ParseModule(Program* out) {
  ModuleDecl mod;
  mod.loc = LocHere();
  Bump();  // 'module'
  mod.name = Cur().text;
  CORAL_RETURN_IF_ERROR(Expect(TokenKind::kIdent));
  CORAL_RETURN_IF_ERROR(Expect(TokenKind::kDot));
  while (!(At(TokenKind::kIdent) && Cur().text == "end_module")) {
    if (At(TokenKind::kEof)) return ErrorHere("missing end_module");
    CORAL_RETURN_IF_ERROR(ParseModuleItem(&mod));
  }
  Bump();  // end_module
  CORAL_RETURN_IF_ERROR(Expect(TokenKind::kDot));
  out->modules.push_back(std::move(mod));
  return Status::OK();
}

Status Parser::ParseModuleItem(ModuleDecl* mod) {
  if (At(TokenKind::kIdent) && Cur().text == "export") {
    return ParseExport(mod);
  }
  if (At(TokenKind::kAt)) {
    return ParseAnnotation(mod, nullptr);
  }
  return ParseRuleOrFact(&mod->rules);
}

Status Parser::ParseExport(ModuleDecl* mod) {
  Bump();  // 'export'
  // One or more predicates, each with one or more adornments:
  //   export s_p(bfff, ffff), helper(bf).
  while (true) {
    if (!At(TokenKind::kIdent)) return ErrorHere("expected predicate name");
    SourceLoc loc = LocHere();
    Symbol pred = factory_->symbols().Intern(Cur().text);
    Bump();
    CORAL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    if (Eat(TokenKind::kRParen)) {  // zero-arity export: alarm()
      mod->exports.push_back(QueryFormDecl{pred, "", loc});
      if (!Eat(TokenKind::kComma)) break;
      continue;
    }
    while (true) {
      if (!At(TokenKind::kIdent) && !At(TokenKind::kVariable)) {
        return ErrorHere("expected adornment string of 'b'/'f'");
      }
      std::string ad = Cur().text;
      for (char c : ad) {
        if (c != 'b' && c != 'f') {
          return ErrorHere("adornment must contain only 'b' and 'f'");
        }
      }
      Bump();
      mod->exports.push_back(QueryFormDecl{pred, ad, loc});
      if (!Eat(TokenKind::kComma)) break;
    }
    CORAL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    if (!Eat(TokenKind::kComma)) break;
  }
  return Expect(TokenKind::kDot);
}

Status Parser::ParseAnnotation(ModuleDecl* mod, Program* top) {
  SourceLoc loc = LocHere();
  Bump();  // '@'
  if (!At(TokenKind::kIdent)) return ErrorHere("expected annotation name");
  std::string name = Cur().text;
  Bump();
  if (mod != nullptr) mod->annotations.push_back(AnnotationUse{name, loc});

  auto module_only = [&]() -> Status {
    if (mod == nullptr) {
      return Status::InvalidArgument("annotation @" + name +
                                     " is only valid inside a module");
    }
    return Status::OK();
  };

  if (name == "aggregate_selection") {
    BeginClause();
    CORAL_ASSIGN_OR_RETURN(AggSelDecl decl, ParseAggregateSelection());
    decl.loc = loc;
    if (mod != nullptr) {
      mod->agg_selections.push_back(std::move(decl));
    } else {
      top->top_agg_selections.push_back(std::move(decl));
    }
    return Expect(TokenKind::kDot);
  }
  if (name == "make_index") {
    BeginClause();
    CORAL_ASSIGN_OR_RETURN(IndexDecl decl, ParseMakeIndex());
    decl.loc = loc;
    if (mod != nullptr) {
      mod->indexes.push_back(std::move(decl));
    } else {
      top->top_indexes.push_back(std::move(decl));
    }
    return Expect(TokenKind::kDot);
  }
  if (name == "multiset") {
    CORAL_RETURN_IF_ERROR(module_only());
    if (!At(TokenKind::kIdent)) return ErrorHere("expected predicate name");
    mod->multiset_preds.push_back(factory_->symbols().Intern(Cur().text));
    Bump();
    return Expect(TokenKind::kDot);
  }

  // Flag-style module annotations.
  CORAL_RETURN_IF_ERROR(module_only());
  if (name == "parallel") {
    // @parallel. or @parallel(N). — parallel bottom-up fixpoint; without
    // an explicit count the Database-wide setting applies. Range checking
    // is the analyzer's job (CRL133) so the whole module gets diagnosed.
    mod->parallel = true;
    if (Eat(TokenKind::kLParen)) {
      bool neg = Eat(TokenKind::kMinus);
      if (!At(TokenKind::kInteger)) {
        return ErrorHere("expected thread count in @parallel(N)");
      }
      // Out-of-int64 or negative counts become 0 — an out-of-range value
      // the analyzer rejects with CRL133 (0 never collides with the -1
      // "no explicit count" default).
      char* end = nullptr;
      long long n = std::strtoll(Cur().text.c_str(), &end, 10);
      if (neg || end == nullptr || *end != '\0' || n < 0) n = 0;
      mod->parallel_threads = static_cast<int64_t>(n);
      Bump();
      CORAL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    }
    return Expect(TokenKind::kDot);
  }
  if (name == "pipelining") {
    mod->eval_mode = EvalMode::kPipelined;
  } else if (name == "materialized" || name == "materialization") {
    mod->eval_mode = EvalMode::kMaterialized;
  } else if (name == "save_module") {
    mod->save_module = true;
  } else if (name == "lazy_eval" || name == "lazy") {
    mod->lazy_eval = true;
  } else if (name == "eager") {
    mod->eager = true;
  } else if (name == "ordered_search") {
    mod->ordered_search = true;
  } else if (name == "naive") {
    mod->fixpoint = FixpointKind::kNaive;
  } else if (name == "bsn" || name == "basic_seminaive") {
    mod->fixpoint = FixpointKind::kBasicSemiNaive;
  } else if (name == "psn" || name == "predicate_seminaive") {
    mod->fixpoint = FixpointKind::kPredicateSemiNaive;
  } else if (name == "no_rewriting") {
    mod->rewrite = RewriteKind::kNone;
  } else if (name == "magic") {
    mod->rewrite = RewriteKind::kMagic;
  } else if (name == "supplementary_magic" || name == "sup_magic") {
    mod->rewrite = RewriteKind::kSupplementaryMagic;
  } else if (name == "factoring" || name == "context_factoring") {
    mod->rewrite = RewriteKind::kFactoring;
  } else if (name == "no_intelligent_backtracking") {
    mod->intelligent_backtracking = false;
  } else if (name == "explain") {
    mod->explain = true;
  } else if (name == "profile") {
    mod->profile = true;
  } else if (name == "reorder_joins") {
    mod->reorder_joins = true;
  } else if (name == "no_reorder_joins") {
    mod->no_reorder_joins = true;
  } else if (name == "no_vm") {
    mod->no_vm = true;
  } else {
    return Status::InvalidArgument("unknown annotation @" + name);
  }
  return Expect(TokenKind::kDot);
}

StatusOr<AggSelDecl> Parser::ParseAggregateSelection() {
  // p(X,Y,P,C) (X,Y) min(C)
  AggSelDecl decl;
  if (!At(TokenKind::kIdent)) return ErrorHere("expected predicate name");
  decl.pred = factory_->symbols().Intern(Cur().text);
  Bump();
  CORAL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
  CORAL_ASSIGN_OR_RETURN(decl.pattern, ParseArgList());
  CORAL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
  CORAL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
  CORAL_ASSIGN_OR_RETURN(decl.group_args, ParseArgList());
  CORAL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
  if (!At(TokenKind::kIdent)) return ErrorHere("expected aggregate name");
  AggFn fn = AggFnFromName(Cur().text);
  switch (fn) {
    case AggFn::kMin:
      decl.kind = AggregateSelection::Kind::kMin;
      break;
    case AggFn::kMax:
      decl.kind = AggregateSelection::Kind::kMax;
      break;
    case AggFn::kAny:
      decl.kind = AggregateSelection::Kind::kAny;
      break;
    default:
      return ErrorHere("aggregate selection supports min, max, any");
  }
  Bump();
  CORAL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
  CORAL_ASSIGN_OR_RETURN(const Arg* agg_arg, ParseTermExpr());
  decl.agg_arg = agg_arg;
  CORAL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
  decl.var_count = static_cast<uint32_t>(var_names_.size());
  return decl;
}

StatusOr<IndexDecl> Parser::ParseMakeIndex() {
  // emp(Name, addr(Street, City)) (Name, City)
  IndexDecl decl;
  if (!At(TokenKind::kIdent)) return ErrorHere("expected predicate name");
  decl.pred = factory_->symbols().Intern(Cur().text);
  Bump();
  CORAL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
  CORAL_ASSIGN_OR_RETURN(decl.pattern, ParseArgList());
  CORAL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
  CORAL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
  CORAL_ASSIGN_OR_RETURN(std::vector<const Arg*> keys, ParseArgList());
  CORAL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
  decl.var_count = static_cast<uint32_t>(var_names_.size());

  for (const Arg* k : keys) {
    if (k->kind() != ArgKind::kVariable) {
      return ErrorHere("index keys must be variables from the pattern");
    }
    uint32_t slot = ArgCast<Variable>(k)->slot();
    decl.key_slots.push_back(slot);
  }
  // Argument-form: pattern is a list of distinct plain variables.
  decl.argument_form = true;
  for (const Arg* p : decl.pattern) {
    if (p->kind() != ArgKind::kVariable) {
      decl.argument_form = false;
      break;
    }
  }
  if (decl.argument_form) {
    for (uint32_t slot : decl.key_slots) {
      bool found = false;
      for (uint32_t i = 0; i < decl.pattern.size(); ++i) {
        if (ArgCast<Variable>(decl.pattern[i])->slot() == slot) {
          decl.cols.push_back(i);
          found = true;
          break;
        }
      }
      if (!found) {
        return ErrorHere("index key variable not in pattern");
      }
    }
  }
  return decl;
}

Status Parser::ParseRuleOrFact(std::vector<Rule>* rules) {
  BeginClause();
  Rule rule;
  rule.loc = LocHere();
  CORAL_ASSIGN_OR_RETURN(rule.head, ParsePositiveLiteral());
  if (rule.head.negated) {
    return ErrorHere("rule head cannot be negated");
  }
  if (Eat(TokenKind::kColonDash)) {
    while (true) {
      CORAL_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
      rule.body.push_back(std::move(lit));
      if (!Eat(TokenKind::kComma)) break;
    }
  }
  CORAL_RETURN_IF_ERROR(Expect(TokenKind::kDot));
  rule.var_count = static_cast<uint32_t>(var_names_.size());
  rule.var_names = var_names_;
  rules->push_back(std::move(rule));
  return Status::OK();
}

Status Parser::ParseQuery(Program* out) {
  Query q;
  q.loc = LocHere();
  Bump();  // '?-'
  BeginClause();
  while (true) {
    CORAL_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
    q.body.push_back(std::move(lit));
    if (!Eat(TokenKind::kComma)) break;
  }
  CORAL_RETURN_IF_ERROR(Expect(TokenKind::kDot));
  q.var_count = static_cast<uint32_t>(var_names_.size());
  q.var_names = var_names_;
  out->queries.push_back(std::move(q));
  return Status::OK();
}

StatusOr<Literal> Parser::ParseLiteral() {
  if (At(TokenKind::kIdent) && Cur().text == "not") {
    SourceLoc loc = LocHere();
    Bump();
    CORAL_ASSIGN_OR_RETURN(Literal lit, ParsePositiveLiteral());
    lit.negated = true;
    lit.loc = loc;
    return lit;
  }
  return ParsePositiveLiteral();
}

StatusOr<Literal> Parser::ParsePositiveLiteral() {
  // Parse a term; if followed by a comparison operator, build an operator
  // literal, else the term itself must be a predicate application.
  SourceLoc loc = LocHere();
  CORAL_ASSIGN_OR_RETURN(const Arg* lhs, ParseTermExpr());

  const char* op = nullptr;
  switch (Cur().kind) {
    case TokenKind::kEquals: op = "="; break;
    case TokenKind::kNotEquals: op = "\\="; break;
    case TokenKind::kLess: op = "<"; break;
    case TokenKind::kGreater: op = ">"; break;
    case TokenKind::kLessEq: op = "=<"; break;
    case TokenKind::kGreaterEq: op = ">="; break;
    default: break;
  }
  if (op != nullptr) {
    Bump();
    CORAL_ASSIGN_OR_RETURN(const Arg* rhs, ParseTermExpr());
    Literal lit;
    lit.pred = factory_->symbols().Intern(op);
    lit.args = {lhs, rhs};
    lit.loc = loc;
    return lit;
  }

  if (lhs->kind() != ArgKind::kAtomOrFunctor) {
    return ErrorHere("expected a predicate application");
  }
  const auto* f = ArgCast<FunctorArg>(lhs);
  Literal lit;
  lit.pred = f->functor();
  lit.args.assign(f->args().begin(), f->args().end());
  lit.loc = loc;
  return lit;
}

StatusOr<const Arg*> Parser::ParseTermExpr() {
  CORAL_ASSIGN_OR_RETURN(const Arg* lhs, ParseTermFactor());
  while (At(TokenKind::kPlus) || At(TokenKind::kMinus)) {
    const char* op = At(TokenKind::kPlus) ? "+" : "-";
    Bump();
    CORAL_ASSIGN_OR_RETURN(const Arg* rhs, ParseTermFactor());
    const Arg* args[] = {lhs, rhs};
    lhs = factory_->MakeFunctor(op, args);
  }
  return lhs;
}

StatusOr<const Arg*> Parser::ParseTermFactor() {
  CORAL_ASSIGN_OR_RETURN(const Arg* lhs, ParseTermPrimary());
  while (At(TokenKind::kStar) || At(TokenKind::kSlash)) {
    const char* op = At(TokenKind::kStar) ? "*" : "/";
    Bump();
    CORAL_ASSIGN_OR_RETURN(const Arg* rhs, ParseTermPrimary());
    const Arg* args[] = {lhs, rhs};
    lhs = factory_->MakeFunctor(op, args);
  }
  return lhs;
}

StatusOr<std::vector<const Arg*>> Parser::ParseArgList() {
  std::vector<const Arg*> args;
  while (true) {
    CORAL_ASSIGN_OR_RETURN(const Arg* a, ParseTermExpr());
    args.push_back(a);
    if (!Eat(TokenKind::kComma)) break;
  }
  return args;
}

StatusOr<const Arg*> Parser::ParseTermPrimary() {
  switch (Cur().kind) {
    case TokenKind::kInteger: {
      std::string text = Cur().text;
      Bump();
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(text.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        return static_cast<const Arg*>(factory_->MakeInt(v));
      }
      // Out of int64 range: arbitrary-precision integer (paper §3.1).
      CORAL_ASSIGN_OR_RETURN(BigInt big, BigInt::FromString(text));
      return static_cast<const Arg*>(factory_->MakeBigInt(big));
    }
    case TokenKind::kDouble: {
      double v = std::strtod(Cur().text.c_str(), nullptr);
      Bump();
      return static_cast<const Arg*>(factory_->MakeDouble(v));
    }
    case TokenKind::kMinus: {
      Bump();
      CORAL_ASSIGN_OR_RETURN(const Arg* inner, ParseTermPrimary());
      if (inner->kind() == ArgKind::kInt) {
        return static_cast<const Arg*>(
            factory_->MakeInt(-ArgCast<IntArg>(inner)->value()));
      }
      if (inner->kind() == ArgKind::kDouble) {
        return static_cast<const Arg*>(
            factory_->MakeDouble(-ArgCast<DoubleArg>(inner)->value()));
      }
      // Symbolic negation: -(X).
      const Arg* args[] = {inner};
      return static_cast<const Arg*>(factory_->MakeFunctor("-", args));
    }
    case TokenKind::kString: {
      const Arg* s = factory_->MakeString(Cur().text);
      Bump();
      return s;
    }
    case TokenKind::kVariable: {
      const Arg* v = VarFor(Cur().text);
      Bump();
      return v;
    }
    case TokenKind::kIdent:
    case TokenKind::kQuotedAtom: {
      std::string name = Cur().text;
      Bump();
      if (Eat(TokenKind::kLParen)) {
        if (Eat(TokenKind::kRParen)) {  // zero-arity: p()
          return static_cast<const Arg*>(factory_->MakeAtom(name));
        }
        CORAL_ASSIGN_OR_RETURN(std::vector<const Arg*> args, ParseArgList());
        CORAL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        return static_cast<const Arg*>(factory_->MakeFunctor(name, args));
      }
      return static_cast<const Arg*>(factory_->MakeAtom(name));
    }
    case TokenKind::kLBracket: {
      Bump();
      if (Eat(TokenKind::kRBracket)) {
        return static_cast<const Arg*>(factory_->Nil());
      }
      CORAL_ASSIGN_OR_RETURN(std::vector<const Arg*> elems, ParseArgList());
      const Arg* tail = nullptr;
      if (Eat(TokenKind::kBar)) {
        CORAL_ASSIGN_OR_RETURN(tail, ParseTermExpr());
      }
      CORAL_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
      return factory_->MakeList(elems, tail);
    }
    case TokenKind::kLParen: {
      Bump();
      CORAL_ASSIGN_OR_RETURN(const Arg* t, ParseTermExpr());
      CORAL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return t;
    }
    case TokenKind::kLess: {
      // Grouping marker <X> (set-grouping / aggregation, paper §5.5.2).
      Bump();
      if (!At(TokenKind::kVariable)) {
        return ErrorHere("expected variable inside <...> grouping");
      }
      const Arg* v = VarFor(Cur().text);
      Bump();
      CORAL_RETURN_IF_ERROR(Expect(TokenKind::kGreater));
      const Arg* args[] = {v};
      return static_cast<const Arg*>(
          factory_->MakeFunctor(kGroupMarker, args));
    }
    default:
      return ErrorHere("expected a term");
  }
}

StatusOr<const Arg*> Parser::ParseTerm(std::string_view text,
                                       TermFactory* factory,
                                       uint32_t* var_count) {
  Parser p(text, factory);
  Lexer lexer(text);
  CORAL_ASSIGN_OR_RETURN(p.tokens_, lexer.Tokenize());
  p.pos_ = 0;
  p.BeginClause();
  CORAL_ASSIGN_OR_RETURN(const Arg* term, p.ParseTermExpr());
  if (!p.At(TokenKind::kEof)) {
    return p.ErrorHere("trailing input after term");
  }
  if (var_count != nullptr) {
    *var_count = static_cast<uint32_t>(p.var_names_.size());
  }
  return term;
}

}  // namespace coral
