#include "src/lang/lexer.h"

#include <cctype>

namespace coral {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

}  // namespace

Status Lexer::Error(const std::string& msg) const {
  return Status::InvalidArgument("lex error at line " +
                                 std::to_string(tok_line_) + ":" +
                                 std::to_string(tok_col_) + ": " + msg);
}

char Lexer::Advance() {
  char c = input_[pos_++];
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

void Lexer::SkipWhitespaceAndComments() {
  while (pos_ < input_.size()) {
    char c = Peek();
    if (c == '%') {
      while (pos_ < input_.size() && Peek() != '\n') Advance();
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      Advance();
    } else {
      return;
    }
  }
}

Token Lexer::MakeToken(TokenKind kind, std::string text) const {
  Token t;
  t.kind = kind;
  t.text = std::move(text);
  t.line = tok_line_;
  t.col = tok_col_;
  return t;
}

StatusOr<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> out;
  while (true) {
    SkipWhitespaceAndComments();
    tok_line_ = line_;
    tok_col_ = col_;
    if (pos_ >= input_.size()) {
      out.push_back(MakeToken(TokenKind::kEof));
      return out;
    }
    char c = Peek();

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string text;
      while (pos_ < input_.size() && IsIdentChar(Peek())) text += Advance();
      bool is_var = std::isupper(static_cast<unsigned char>(text[0])) ||
                    text[0] == '_';
      out.push_back(
          MakeToken(is_var ? TokenKind::kVariable : TokenKind::kIdent, text));
      continue;
    }

    if (IsDigit(c)) {
      std::string text;
      while (pos_ < input_.size() && IsDigit(Peek())) text += Advance();
      bool is_double = false;
      // '.' starts a fraction only when followed by a digit; otherwise it
      // terminates the clause.
      if (Peek() == '.' && IsDigit(Peek(1))) {
        is_double = true;
        text += Advance();
        while (pos_ < input_.size() && IsDigit(Peek())) text += Advance();
      }
      if (Peek() == 'e' || Peek() == 'E') {
        size_t save = pos_;
        std::string exp;
        exp += Advance();
        if (Peek() == '+' || Peek() == '-') exp += Advance();
        if (IsDigit(Peek())) {
          is_double = true;
          while (pos_ < input_.size() && IsDigit(Peek())) exp += Advance();
          text += exp;
        } else {
          pos_ = save;  // 'e' belongs to a following identifier
        }
      }
      out.push_back(MakeToken(
          is_double ? TokenKind::kDouble : TokenKind::kInteger, text));
      continue;
    }

    switch (c) {
      case '"': {
        Advance();
        std::string text;
        while (pos_ < input_.size() && Peek() != '"') {
          char ch = Advance();
          if (ch == '\\' && pos_ < input_.size()) {
            char esc = Advance();
            switch (esc) {
              case 'n': text += '\n'; break;
              case 't': text += '\t'; break;
              default: text += esc;
            }
          } else {
            text += ch;
          }
        }
        if (pos_ >= input_.size()) return Error("unterminated string");
        Advance();  // closing quote
        out.push_back(MakeToken(TokenKind::kString, text));
        continue;
      }
      case '\'': {
        Advance();
        std::string text;
        while (pos_ < input_.size() && Peek() != '\'') {
          char ch = Advance();
          if (ch == '\\' && pos_ < input_.size()) text += Advance();
          else text += ch;
        }
        if (pos_ >= input_.size()) return Error("unterminated quoted atom");
        Advance();
        out.push_back(MakeToken(TokenKind::kQuotedAtom, text));
        continue;
      }
      case '(': Advance(); out.push_back(MakeToken(TokenKind::kLParen)); continue;
      case ')': Advance(); out.push_back(MakeToken(TokenKind::kRParen)); continue;
      case '[': Advance(); out.push_back(MakeToken(TokenKind::kLBracket)); continue;
      case ']': Advance(); out.push_back(MakeToken(TokenKind::kRBracket)); continue;
      case '{': Advance(); out.push_back(MakeToken(TokenKind::kLBrace)); continue;
      case '}': Advance(); out.push_back(MakeToken(TokenKind::kRBrace)); continue;
      case ',': Advance(); out.push_back(MakeToken(TokenKind::kComma)); continue;
      case '|': Advance(); out.push_back(MakeToken(TokenKind::kBar)); continue;
      case '@': Advance(); out.push_back(MakeToken(TokenKind::kAt)); continue;
      case '+': Advance(); out.push_back(MakeToken(TokenKind::kPlus)); continue;
      case '*': Advance(); out.push_back(MakeToken(TokenKind::kStar)); continue;
      case '/': Advance(); out.push_back(MakeToken(TokenKind::kSlash)); continue;
      case '-': Advance(); out.push_back(MakeToken(TokenKind::kMinus)); continue;
      case '.':
        Advance();
        out.push_back(MakeToken(TokenKind::kDot));
        continue;
      case ':':
        Advance();
        if (Peek() == '-') {
          Advance();
          out.push_back(MakeToken(TokenKind::kColonDash));
          continue;
        }
        return Error("expected ':-'");
      case '?':
        Advance();
        if (Peek() == '-') {
          Advance();
          out.push_back(MakeToken(TokenKind::kQueryDash));
          continue;
        }
        // Bare '?' also introduces a query (interactive shorthand).
        out.push_back(MakeToken(TokenKind::kQueryDash));
        continue;
      case '=':
        Advance();
        if (Peek() == '<') {
          Advance();
          out.push_back(MakeToken(TokenKind::kLessEq));
        } else {
          out.push_back(MakeToken(TokenKind::kEquals));
        }
        continue;
      case '<':
        Advance();
        if (Peek() == '=') {
          Advance();
          out.push_back(MakeToken(TokenKind::kLessEq));
        } else {
          out.push_back(MakeToken(TokenKind::kLess));
        }
        continue;
      case '>':
        Advance();
        if (Peek() == '=') {
          Advance();
          out.push_back(MakeToken(TokenKind::kGreaterEq));
        } else {
          out.push_back(MakeToken(TokenKind::kGreater));
        }
        continue;
      case '\\':
        Advance();
        if (Peek() == '=') {
          Advance();
          out.push_back(MakeToken(TokenKind::kNotEquals));
          continue;
        }
        return Error("expected '\\='");
      case '!':
        Advance();
        if (Peek() == '=') {
          Advance();
          out.push_back(MakeToken(TokenKind::kNotEquals));
          continue;
        }
        return Error("expected '!='");
      default:
        return Error(std::string("unexpected character '") + c + "'");
    }
  }
}

}  // namespace coral
