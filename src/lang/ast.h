// Copyright (c) 1993-style CORAL reproduction authors.
// AST for the CORAL declarative language. Terms are built directly as
// canonical Arg nodes by the parser (variables get clause-local slots), so
// the same structures flow through rewriting into evaluation — the paper's
// "internal representation" that the interpreter executes.

#ifndef CORAL_LANG_AST_H_
#define CORAL_LANG_AST_H_

#include <string>
#include <vector>

#include "src/data/arg.h"
#include "src/rel/agg_selection.h"
#include "src/util/hash.h"

namespace coral {

/// A position in the consulted source text, propagated from lexer tokens
/// so semantic diagnostics can point at the offending clause. Line 0
/// means "no source location" (e.g. programmatically built ASTs).
struct SourceLoc {
  int line = 0;
  int col = 0;

  bool valid() const { return line > 0; }
  /// "line L:C" or "" when invalid.
  std::string ToString() const;
};

/// Identity of a predicate: name symbol + arity.
struct PredRef {
  Symbol sym = nullptr;
  uint32_t arity = 0;

  bool operator==(const PredRef& o) const {
    return sym == o.sym && arity == o.arity;
  }
  std::string ToString() const {
    return sym->name + "/" + std::to_string(arity);
  }
};

struct PredRefHash {
  size_t operator()(const PredRef& p) const {
    return HashCombine(HashMix64(p.sym->id), p.arity);
  }
};

/// One literal in a rule body or head. Comparison and arithmetic goals
/// are literals whose predicate symbol is the operator ("=", "<", ...).
struct Literal {
  Symbol pred = nullptr;
  std::vector<const Arg*> args;
  bool negated = false;
  SourceLoc loc;

  PredRef pred_ref() const {
    return PredRef{pred, static_cast<uint32_t>(args.size())};
  }
  std::string ToString() const;
};

/// A rule; facts are rules with an empty body. Variables use slots
/// 0..var_count-1, numbered by first occurrence; var_names maps slots back
/// to source names for printing.
struct Rule {
  Literal head;
  std::vector<Literal> body;
  uint32_t var_count = 0;
  std::vector<std::string> var_names;
  SourceLoc loc;

  bool is_fact() const { return body.empty(); }
  std::string ToString() const;
};

/// Module-level evaluation strategy choices (paper §4, §5).
enum class EvalMode { kMaterialized, kPipelined };
enum class FixpointKind { kBasicSemiNaive, kPredicateSemiNaive, kNaive };

/// Upper bound on @parallel(N) / Database::set_num_threads(): far above
/// any sensible worker count for one fixpoint, low enough to catch typos.
inline constexpr int64_t kMaxParallelThreads = 64;
enum class RewriteKind { kSupplementaryMagic, kMagic, kFactoring, kNone };

/// One exported query form: predicate + adornment string over {b, f}
/// (paper §2/§4.1), e.g. export s_p(bfff, ffff) yields two decls.
struct QueryFormDecl {
  Symbol pred = nullptr;
  std::string adornment;
  SourceLoc loc;
};

/// One `@name` annotation occurrence as written, with its location —
/// kept alongside the digested ModuleDecl flags so the semantic analyzer
/// can diagnose contradictory or ineffective combinations at the source
/// line where they were declared.
struct AnnotationUse {
  std::string name;
  SourceLoc loc;
};

/// Parsed @aggregate_selection declaration (paper §5.5.2).
struct AggSelDecl {
  Symbol pred = nullptr;
  AggregateSelection::Kind kind = AggregateSelection::Kind::kMin;
  std::vector<const Arg*> pattern;  // canonical slots 0..var_count-1
  uint32_t var_count = 0;
  std::vector<const Arg*> group_args;
  const Arg* agg_arg = nullptr;  // null only for argument-less any
  SourceLoc loc;
};

/// Parsed @make_index declaration (paper §5.5.1). Argument-form when the
/// pattern is a list of distinct plain variables; pattern-form otherwise.
struct IndexDecl {
  Symbol pred = nullptr;
  std::vector<const Arg*> pattern;
  uint32_t var_count = 0;
  std::vector<uint32_t> key_slots;
  bool argument_form = false;
  std::vector<uint32_t> cols;  // for argument-form
  SourceLoc loc;
};

/// A declarative program module (paper §5): unit of compilation with its
/// own evaluation strategy, chosen by annotations.
struct ModuleDecl {
  std::string name;
  SourceLoc loc;
  std::vector<QueryFormDecl> exports;
  std::vector<Rule> rules;
  std::vector<AnnotationUse> annotations;  // as written, for diagnostics

  EvalMode eval_mode = EvalMode::kMaterialized;
  FixpointKind fixpoint = FixpointKind::kBasicSemiNaive;
  RewriteKind rewrite = RewriteKind::kSupplementaryMagic;
  bool save_module = false;        // paper §5.4.2
  bool lazy_eval = false;          // paper §5.4.3
  bool eager = false;              // compute all answers before returning
  bool ordered_search = false;     // paper §5.4.1
  bool intelligent_backtracking = true;
  bool explain = false;            // record derivations (Explanation tool)
  bool profile = false;            // record evaluation statistics (§6, §8)
  bool reorder_joins = false;      // optimizer picks the join order (§4.2)
  bool no_reorder_joins = false;   // keep bodies as written even when the
                                   // database-level auto-optimizer is on
  bool no_vm = false;              // always interpret; never run this
                                   // module's rules on the bytecode VM
  bool parallel = false;           // @parallel: multi-threaded fixpoint
  int64_t parallel_threads = -1;   // @parallel(N); -1 = no explicit count
                                   // (use Database::num_threads())
  std::vector<AggSelDecl> agg_selections;
  std::vector<IndexDecl> indexes;
  std::vector<Symbol> multiset_preds;  // paper §4.2 multiset semantics

  std::string ToString() const;
};

/// A query: conjunction of literals (interactive `?- ...`).
struct Query {
  std::vector<Literal> body;
  uint32_t var_count = 0;
  std::vector<std::string> var_names;
  SourceLoc loc;
  std::string ToString() const;
};

/// Result of parsing one source file / command string.
struct Program {
  std::vector<ModuleDecl> modules;
  std::vector<Rule> top_facts;     // facts outside any module
  std::vector<Query> queries;
  std::vector<IndexDecl> top_indexes;
  std::vector<AggSelDecl> top_agg_selections;
};

/// Functor names used as in-term markers by the parser.
inline constexpr const char* kGroupMarker = "$group";  // <X> in rule heads

/// True if `sym` names a comparison / unification operator.
bool IsOperatorSymbol(Symbol sym);

/// Aggregate function recognized in rule heads: min, max, sum, count, avg,
/// any, or set-of for a bare <X>.
enum class AggFn { kNone, kMin, kMax, kSum, kCount, kAvg, kAny, kSetOf };
AggFn AggFnFromName(const std::string& name);
const char* AggFnName(AggFn fn);

}  // namespace coral

#endif  // CORAL_LANG_AST_H_
