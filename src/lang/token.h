// Copyright (c) 1993-style CORAL reproduction authors.
// Token stream for the CORAL declarative language.

#ifndef CORAL_LANG_TOKEN_H_
#define CORAL_LANG_TOKEN_H_

#include <cstdint>
#include <string>

namespace coral {

enum class TokenKind : uint8_t {
  kEof,
  kIdent,      // lowercase-leading identifier: atoms, predicate names
  kVariable,   // uppercase- or underscore-leading identifier
  kInteger,    // also arbitrary-precision when out of int64 range
  kDouble,
  kString,     // "..."
  kQuotedAtom, // '...'
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kComma,
  kDot,        // clause terminator
  kBar,        // | in lists
  kColonDash,  // :-
  kQueryDash,  // ?-
  kAt,         // @
  kEquals,     // =
  kNotEquals,  // \=  (also !=)
  kLess,       // <
  kGreater,    // >
  kLessEq,     // =< (also <=)
  kGreaterEq,  // >=
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kError,
};

const char* TokenKindName(TokenKind k);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;     // identifier/number/string payload
  int line = 0;
  int col = 0;

  std::string Describe() const;
};

}  // namespace coral

#endif  // CORAL_LANG_TOKEN_H_
