// Copyright (c) 1993-style CORAL reproduction authors.
// Hand-written lexer for the CORAL language. '%' starts a line comment.
// A '.' terminates a clause when followed by whitespace, a comment or end
// of input; otherwise it is part of a number.

#ifndef CORAL_LANG_LEXER_H_
#define CORAL_LANG_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/lang/token.h"
#include "src/util/status.h"

namespace coral {

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  /// Tokenizes the whole input. The final token is always kEof.
  StatusOr<std::vector<Token>> Tokenize();

 private:
  Status Error(const std::string& msg) const;
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
  }
  char Advance();
  void SkipWhitespaceAndComments();
  Token MakeToken(TokenKind kind, std::string text = "") const;

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  int tok_line_ = 1;
  int tok_col_ = 1;
};

}  // namespace coral

#endif  // CORAL_LANG_LEXER_H_
