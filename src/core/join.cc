#include "src/core/join.h"

#include "src/core/eval_context.h"
#include "src/util/logging.h"

namespace coral {

const Status& GoalSource::status() const {
  static const Status kOk;
  return kOk;
}

bool UnifyTupleWithLiteral(const Tuple* tuple, BindEnv* tuple_env,
                           const Literal& lit, BindEnv* env, Trail* trail) {
  CORAL_DCHECK(tuple->arity() == lit.args.size());
  for (uint32_t i = 0; i < tuple->arity(); ++i) {
    if (!Unify(lit.args[i], env, tuple->arg(i), tuple_env, trail)) {
      return false;
    }
  }
  return true;
}

namespace {

std::vector<TermRef> LiteralRefs(const Literal& lit, BindEnv* env) {
  std::vector<TermRef> refs;
  refs.reserve(lit.args.size());
  for (const Arg* a : lit.args) refs.push_back({a, env});
  return refs;
}

}  // namespace

void RelationGoalSource::DoReset() {
  std::vector<TermRef> refs = LiteralRefs(*lit_, env_);
  it_ = rel_->Select(refs, from_, to_);
  if (part_.count > 1) {
    it_ = std::make_unique<PartitionedIterator>(std::move(it_), part_.col,
                                                part_.index, part_.count);
  }
}

bool RelationGoalSource::Next(Trail* trail) {
  trail->UndoTo(base_);  // drop the previous candidate's bindings
  if (it_ == nullptr) return false;
  while (const Tuple* t = it_->Next()) {
    tuple_env_.EnsureSize(t->var_count());
    if (UnifyTupleWithLiteral(t, &tuple_env_, *lit_, env_, trail)) {
      return true;
    }
    trail->UndoTo(base_);
  }
  return false;
}

bool NegationGoalSource::Next(Trail* trail) {
  trail->UndoTo(base_);
  if (fired_) return false;
  fired_ = true;
  std::vector<TermRef> refs = LiteralRefs(*lit_, env_);
  std::unique_ptr<TupleIterator> it = rel_->Select(refs, 0, kMaxMark);
  BindEnv tuple_env(0);
  while (const Tuple* t = it->Next()) {
    tuple_env.EnsureSize(t->var_count());
    bool unifies = UnifyTupleWithLiteral(t, &tuple_env, *lit_, env_, trail);
    trail->UndoTo(base_);
    if (unifies) return false;  // a witness exists: negation fails
  }
  return true;
}

void BuiltinGoalSource::DoReset() {
  std::vector<TermRef> refs = LiteralRefs(*lit_, env_);
  auto gen = (*fn_)(refs, factory_);
  if (!gen.ok()) {
    status_ = gen.status();
    gen_ = nullptr;
    return;
  }
  gen_ = std::move(gen).value();
}

bool BuiltinGoalSource::Next(Trail* trail) {
  trail->UndoTo(base_);
  if (gen_ == nullptr) return false;
  return gen_->Next(trail);
}

void IteratorGoalSource::DoReset() {
  std::vector<TermRef> refs = LiteralRefs(*lit_, env_);
  auto it = open_(refs);
  if (!it.ok()) {
    status_ = it.status();
    it_ = nullptr;
    return;
  }
  it_ = std::move(it).value();
}

bool IteratorGoalSource::Next(Trail* trail) {
  trail->UndoTo(base_);
  if (it_ == nullptr) return false;
  while (const Tuple* t = it_->Next()) {
    tuple_env_.EnsureSize(t->var_count());
    if (UnifyTupleWithLiteral(t, &tuple_env_, *lit_, env_, trail)) {
      return true;
    }
    trail->UndoTo(base_);
  }
  if (!it_->status().ok() && status_.ok()) status_ = it_->status();
  return false;
}

bool NegatedIteratorGoalSource::Next(Trail* trail) {
  trail->UndoTo(base_);
  if (fired_) return false;
  fired_ = true;
  std::vector<TermRef> refs = LiteralRefs(*lit_, env_);
  auto it = open_(refs);
  if (!it.ok()) {
    status_ = it.status();
    return false;
  }
  BindEnv tuple_env(0);
  while (const Tuple* t = (*it)->Next()) {
    tuple_env.EnsureSize(t->var_count());
    bool unifies = UnifyTupleWithLiteral(t, &tuple_env, *lit_, env_, trail);
    trail->UndoTo(base_);
    if (unifies) return false;
  }
  if (!(*it)->status().ok()) {
    status_ = (*it)->status();
    return false;
  }
  return true;
}

bool TupleListGoalSource::Next(Trail* trail) {
  trail->UndoTo(base_);
  while (pos_ < tuples_->size()) {
    const Tuple* t = (*tuples_)[pos_++];
    tuple_env_.EnsureSize(t->var_count());
    if (UnifyTupleWithLiteral(t, &tuple_env_, *lit_, env_, trail)) {
      return true;
    }
    trail->UndoTo(base_);
  }
  return false;
}

void FilteredRelationGoalSource::DoReset() {
  std::vector<TermRef> refs = LiteralRefs(*lit_, env_);
  it_ = rel_->Select(refs, 0, kMaxMark);
}

bool FilteredRelationGoalSource::Next(Trail* trail) {
  trail->UndoTo(base_);
  if (it_ == nullptr) return false;
  while (const Tuple* t = it_->Next()) {
    if (exclude_ != nullptr && exclude_->count(t) > 0) continue;
    tuple_env_.EnsureSize(t->var_count());
    if (UnifyTupleWithLiteral(t, &tuple_env_, *lit_, env_, trail)) {
      return true;
    }
    trail->UndoTo(base_);
  }
  return false;
}

void UnionGoalSource::DoReset() {
  idx_ = 0;
  if (!parts_.empty()) parts_[0]->Reset(trail_);
}

bool UnionGoalSource::Next(Trail* trail) {
  while (idx_ < parts_.size()) {
    GoalSource& part = *parts_[idx_];
    if (part.Next(trail)) return true;
    if (!part.status().ok() && status_.ok()) status_ = part.status();
    ++idx_;
    if (idx_ < parts_.size()) parts_[idx_]->Reset(trail);
  }
  return false;
}

const Status& UnionGoalSource::status() const {
  if (!status_.ok()) return status_;
  for (const auto& p : parts_) {
    if (!p->status().ok()) return p->status();
  }
  return GoalSource::status();
}

RuleCursor::RuleCursor(std::vector<std::unique_ptr<GoalSource>> sources,
                       std::vector<int> backtrack, bool intelligent_bt,
                       Trail* trail)
    : sources_(std::move(sources)),
      backtrack_(std::move(backtrack)),
      intelligent_bt_(intelligent_bt),
      trail_(trail),
      produced_(sources_.size(), false) {
  CORAL_CHECK_EQ(backtrack_.size(), sources_.size());
}

bool RuleCursor::Next() {
  const int n = static_cast<int>(sources_.size());
  if (pos_ == -2) {
    start_mark_ = trail_->mark();
    if (n == 0) {
      pos_ = -1;  // empty body: succeed exactly once
      return true;
    }
    pos_ = 0;
    sources_[0]->Reset(trail_);
    produced_[0] = false;
  } else if (pos_ == -1) {
    return false;  // exhausted (or empty body already yielded)
  } else {
    pos_ = n - 1;  // resume: retry the deepest literal
  }

  while (pos_ >= 0) {
    GoalSource& src = *sources_[pos_];
    ++probes_;
    // Deadline poll, amortized over ~1k probes so the common case costs
    // one branch; an expired deadline unwinds as an exhausted cursor with
    // status() = kDeadlineExceeded.
    if ((probes_ & 1023u) == 0 && status_.ok()) {
      Status deadline = CheckEvalDeadline();
      if (!deadline.ok()) {
        status_ = std::move(deadline);
        break;
      }
    }
    if (src.Next(trail_)) {
      produced_[pos_] = true;
      if (pos_ == n - 1) return true;
      ++pos_;
      sources_[pos_]->Reset(trail_);
      if (!sources_[pos_]->status().ok() && status_.ok()) {
        status_ = sources_[pos_]->status();
      }
      produced_[pos_] = false;
      continue;
    }
    if (!src.status().ok() && status_.ok()) status_ = src.status();
    // Exhausted at pos_ (its bindings are already undone). Intelligent
    // backtracking jumps over literals that cannot cure a zero-solution
    // failure (paper §4.2); abandon everything in between.
    int target = (!intelligent_bt_ || produced_[pos_])
                     ? pos_ - 1
                     : backtrack_[pos_];
    for (int j = pos_ - 1; j > target; --j) sources_[j]->Abandon();
    pos_ = target;
  }
  trail_->UndoTo(start_mark_);
  pos_ = -1;
  return false;
}

void RuleCursor::UndoAll() {
  if (pos_ != -2) trail_->UndoTo(start_mark_);
  pos_ = -1;
}

}  // namespace coral
