// Copyright (c) 1993-style CORAL reproduction authors.
// Built-in predicates and arithmetic evaluation. Builtins present the same
// generator ("get-next-tuple") discipline as relation scans: Next() binds
// variables through the trail and returns false when exhausted. CORAL has
// no compile-time type checking (paper §9 lists this as a lesson learned);
// instantiation and type faults surface as Status errors at run time.

#ifndef CORAL_CORE_BUILTINS_H_
#define CORAL_CORE_BUILTINS_H_

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>

#include "src/data/term_factory.h"
#include "src/data/unify.h"
#include "src/util/status.h"

namespace coral {

/// One activation of a builtin for a specific argument binding.
class BuiltinGenerator {
 public:
  virtual ~BuiltinGenerator() = default;
  /// Produces the next solution, recording variable bindings on `trail`.
  /// The caller undoes the trail between solutions. Returns false when no
  /// (more) solutions exist.
  virtual bool Next(Trail* trail) = 0;
};

/// Factory invoked each time evaluation reaches the builtin literal with
/// fresh bindings. Errors (e.g. insufficiently instantiated arguments)
/// propagate as Status.
using BuiltinFn = std::function<StatusOr<std::unique_ptr<BuiltinGenerator>>(
    std::span<const TermRef> args, TermFactory* factory)>;

/// Name/arity-keyed registry; each Database owns one pre-loaded with the
/// standard builtins, extensible by users (paper §7.1: registration of
/// predicates manipulating new types is a single command).
class BuiltinRegistry {
 public:
  BuiltinRegistry() = default;

  void Register(const std::string& name, uint32_t arity, BuiltinFn fn);
  /// nullptr when not a builtin.
  const BuiltinFn* Find(const std::string& name, uint32_t arity) const;

  /// Loads =, \=, <, >, =<, >=, append/3, member/2, length/2, between/3,
  /// functor/3, arg/3, sort/2, write/1, writeln/1.
  void RegisterStandard();

 private:
  std::unordered_map<std::string, BuiltinFn> fns_;  // key "name/arity"
};

/// Evaluates `t` under `env` as an arithmetic expression when it is one:
/// +, -, *, /, mod, min, max, abs over int/double/bigint with the usual
/// promotions (int overflow promotes to bigint). Non-arithmetic terms are
/// resolved and returned unchanged, so `=` can serve both unification and
/// arithmetic (as in CORAL's C1 = C + EC). Unbound variables inside an
/// arithmetic functor are an error.
StatusOr<TermRef> EvalArith(const Arg* t, BindEnv* env, TermFactory* factory);

}  // namespace coral

#endif  // CORAL_CORE_BUILTINS_H_
