// Copyright (c) 1993-style CORAL reproduction authors.
// The nested-loops-with-indexing join executor (paper §4.2, §5.3). A rule
// body is evaluated by a RuleCursor: a resumable depth-first search over
// per-literal GoalSources. Each source presents the get-next-tuple
// discipline; a trail of variable bindings is unwound when a loop advances
// (paper: "CORAL maintains a trail of variable bindings... used to undo
// variable bindings when the nested-loops join considers the next tuple").
// The cursor is the paper's "frozen computation": holding one suspends the
// join, which is how pipelining and lazy evaluation are built.
//
// Undo discipline: every source captures a trail baseline at Reset; on
// each Next it first undoes its own previous solution, and Abandon
// discards it entirely. Stateful sources (nested pipelined scans) manage
// their internal trail segments themselves, which is why the cursor never
// rewinds into a suspended source.

#ifndef CORAL_CORE_JOIN_H_
#define CORAL_CORE_JOIN_H_

#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "src/core/builtins.h"
#include "src/data/unify.h"
#include "src/lang/ast.h"
#include "src/rel/partition.h"
#include "src/rel/relation.h"

namespace coral {

/// Source of candidate solutions for one body literal.
class GoalSource {
 public:
  virtual ~GoalSource() = default;

  /// (Re)opens the source under the bindings currently in effect and
  /// captures the trail baseline.
  void Reset(Trail* trail) {
    trail_ = trail;
    base_ = trail->mark();
    DoReset();
  }

  /// Produces the next solution, binding variables via the trail. The
  /// source undoes its own previous solution first. Returns false when
  /// exhausted (with the trail back at the baseline).
  virtual bool Next(Trail* trail) = 0;

  /// Discards the source's bindings and iteration state.
  virtual void Abandon() {
    if (trail_ != nullptr) trail_->UndoTo(base_);
  }

  /// First error encountered (builtin faults etc.); OK otherwise.
  virtual const Status& status() const;

 protected:
  virtual void DoReset() = 0;

  Trail* trail_ = nullptr;
  Trail::Mark base_ = 0;
};

/// Hash-partition restriction of a delta scan (parallel fixpoint): yield
/// only tuples of partition `index` of `count`, keyed on column `col`
/// (-1 = whole-tuple hash). count == 0 disables partitioning.
struct PartitionSpec {
  int col = -1;
  uint32_t index = 0;
  uint32_t count = 0;
};

/// Scan of a stored relation restricted to a mark window, using whatever
/// index the relation selects; candidates are unified argument-wise.
class RelationGoalSource : public GoalSource {
 public:
  RelationGoalSource(const Literal* lit, BindEnv* env, const Relation* rel,
                     Mark from, Mark to, PartitionSpec part = {})
      : lit_(lit), env_(env), rel_(rel), from_(from), to_(to), part_(part),
        tuple_env_(0) {}

  bool Next(Trail* trail) override;

 protected:
  void DoReset() override;

 private:
  const Literal* lit_;
  BindEnv* env_;
  const Relation* rel_;
  Mark from_, to_;
  PartitionSpec part_;
  BindEnv tuple_env_;
  std::unique_ptr<TupleIterator> it_;
};

/// Negation as set-difference (paper §5.4.1): succeeds exactly once when
/// no stored tuple unifies with the (bound) literal; never binds.
class NegationGoalSource : public GoalSource {
 public:
  NegationGoalSource(const Literal* lit, BindEnv* env, const Relation* rel)
      : lit_(lit), env_(env), rel_(rel) {}

  bool Next(Trail* trail) override;

 protected:
  void DoReset() override { fired_ = false; }

 private:
  const Literal* lit_;
  BindEnv* env_;
  const Relation* rel_;
  bool fired_ = false;
};

/// A builtin literal.
class BuiltinGoalSource : public GoalSource {
 public:
  BuiltinGoalSource(const Literal* lit, BindEnv* env, const BuiltinFn* fn,
                    TermFactory* factory)
      : lit_(lit), env_(env), fn_(fn), factory_(factory) {}

  bool Next(Trail* trail) override;
  const Status& status() const override { return status_; }

 protected:
  void DoReset() override;

 private:
  const Literal* lit_;
  BindEnv* env_;
  const BuiltinFn* fn_;
  TermFactory* factory_;
  std::unique_ptr<BuiltinGenerator> gen_;
  Status status_;
};

/// Adapts any externally-produced tuple stream (module calls, computed
/// relations): `open` is invoked at Reset with the literal's current
/// argument bindings and returns a get-next-tuple iterator whose tuples
/// are unified with the literal arguments.
class IteratorGoalSource : public GoalSource {
 public:
  using Opener = std::function<StatusOr<std::unique_ptr<TupleIterator>>(
      std::span<const TermRef> args)>;

  IteratorGoalSource(const Literal* lit, BindEnv* env, Opener open)
      : lit_(lit), env_(env), open_(std::move(open)), tuple_env_(0) {}

  bool Next(Trail* trail) override;
  const Status& status() const override { return status_; }

 protected:
  void DoReset() override;

 private:
  const Literal* lit_;
  BindEnv* env_;
  Opener open_;
  BindEnv tuple_env_;
  std::unique_ptr<TupleIterator> it_;
  Status status_;
};

/// Existence test over an arbitrary opener (negation of module calls /
/// computed relations).
class NegatedIteratorGoalSource : public GoalSource {
 public:
  NegatedIteratorGoalSource(const Literal* lit, BindEnv* env,
                            IteratorGoalSource::Opener open)
      : lit_(lit), env_(env), open_(std::move(open)) {}

  bool Next(Trail* trail) override;
  const Status& status() const override { return status_; }

 protected:
  void DoReset() override { fired_ = false; }

 private:
  const Literal* lit_;
  BindEnv* env_;
  IteratorGoalSource::Opener open_;
  bool fired_ = false;
  Status status_;
};

/// Unify-iterates an explicit tuple list. Incremental view maintenance
/// (docs/MAINTENANCE.md) places delta tuple sets at chosen body positions
/// without materializing them as relations.
class TupleListGoalSource : public GoalSource {
 public:
  TupleListGoalSource(const Literal* lit, BindEnv* env,
                      const std::vector<const Tuple*>* tuples)
      : lit_(lit), env_(env), tuples_(tuples), tuple_env_(0) {}

  bool Next(Trail* trail) override;

 protected:
  void DoReset() override { pos_ = 0; }

 private:
  const Literal* lit_;
  BindEnv* env_;
  const std::vector<const Tuple*>* tuples_;
  BindEnv tuple_env_;
  size_t pos_ = 0;
};

/// Full-window relation scan that skips tuples in `exclude` at yield
/// time. Maintenance uses it to evaluate a body position against the
/// pre-update ("old") or mid-update state: the live relation minus the
/// tuples this update inserted.
class FilteredRelationGoalSource : public GoalSource {
 public:
  FilteredRelationGoalSource(const Literal* lit, BindEnv* env,
                             const Relation* rel,
                             const std::unordered_set<const Tuple*>* exclude)
      : lit_(lit), env_(env), rel_(rel), exclude_(exclude), tuple_env_(0) {}

  bool Next(Trail* trail) override;

 protected:
  void DoReset() override;

 private:
  const Literal* lit_;
  BindEnv* env_;
  const Relation* rel_;
  const std::unordered_set<const Tuple*>* exclude_;
  BindEnv tuple_env_;
  std::unique_ptr<TupleIterator> it_;
};

/// Sequential union of sub-sources: all solutions of parts[0], then
/// parts[1], ... Maintenance uses it to scan "live union deleted" — the
/// pre-deletion state — at non-delta body positions.
class UnionGoalSource : public GoalSource {
 public:
  explicit UnionGoalSource(std::vector<std::unique_ptr<GoalSource>> parts)
      : parts_(std::move(parts)) {}

  bool Next(Trail* trail) override;
  const Status& status() const override;

 protected:
  void DoReset() override;

 private:
  std::vector<std::unique_ptr<GoalSource>> parts_;
  size_t idx_ = 0;
  Status status_;
};

/// Resumable nested-loops join over a rule body.
class RuleCursor {
 public:
  /// `sources` has one entry per body literal (left-to-right order);
  /// `backtrack` the precomputed intelligent-backtracking targets (used
  /// when `intelligent_bt`); `trail` is shared with the enclosing
  /// computation so suspended cursors compose.
  RuleCursor(std::vector<std::unique_ptr<GoalSource>> sources,
             std::vector<int> backtrack, bool intelligent_bt, Trail* trail);

  /// Advances to the next solution of the whole body. On true, bindings
  /// are in effect in the environments the sources were built over; they
  /// remain valid until the next call (or UndoAll).
  bool Next();

  /// Undoes all bindings made by this cursor.
  void UndoAll();

  const Status& status() const { return status_; }

  /// Get-next-tuple calls issued to body goal sources so far — the join
  /// probe count the profiler reports. A plain counter: each cursor is
  /// driven by exactly one thread.
  uint64_t probes() const { return probes_; }

 private:
  std::vector<std::unique_ptr<GoalSource>> sources_;
  std::vector<int> backtrack_;
  bool intelligent_bt_;
  Trail* trail_;
  std::vector<bool> produced_;
  int pos_ = -2;  // -2: not started; -1: failed/finished
  Trail::Mark start_mark_ = 0;
  uint64_t probes_ = 0;
  Status status_;
};

/// Unifies tuple arguments against literal arguments; helper shared by
/// sources. Returns false (leaving the trail for the caller to undo) on
/// mismatch.
bool UnifyTupleWithLiteral(const Tuple* tuple, BindEnv* tuple_env,
                           const Literal& lit, BindEnv* env, Trail* trail);

}  // namespace coral

#endif  // CORAL_CORE_JOIN_H_
