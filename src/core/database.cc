#include "src/core/database.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "src/lang/parser.h"
#include "src/obs/report.h"
#include "src/rel/hash_relation.h"
#include "src/rewrite/seminaive.h"
#include "src/util/logging.h"

namespace coral {

std::string AnswerRow::ToString() const {
  if (bindings.empty()) return "true";
  std::string s;
  for (size_t i = 0; i < bindings.size(); ++i) {
    if (i) s += ", ";
    s += bindings[i].first + " = " + bindings[i].second->ToString();
  }
  return s;
}

std::string QueryResult::ToString() const {
  std::string s;
  if (rows.empty()) return "false\n";
  for (const AnswerRow& row : rows) {
    s += row.ToString();
    s += "\n";
  }
  return s;
}

namespace {

/// Single-solution generator succeeding iff `f` returns true.
class OnceFnGenerator : public BuiltinGenerator {
 public:
  explicit OnceFnGenerator(std::function<bool(Trail*)> f)
      : f_(std::move(f)) {}
  bool Next(Trail* trail) override {
    if (done_) return false;
    done_ = true;
    return f_(trail);
  }

 private:
  std::function<bool(Trail*)> f_;
  bool done_ = false;
};

/// Extracts (pred, args tuple) from a reified fact term like p(a, b).
StatusOr<std::pair<PredRef, const Tuple*>> ReifyFact(TermRef t,
                                                     TermFactory* factory) {
  TermRef r = Deref(t.term, t.env);
  if (r.term->kind() != ArgKind::kAtomOrFunctor) {
    return Status::InvalidArgument("assert/retract need a predicate term");
  }
  const auto* f = ArgCast<FunctorArg>(r.term);
  std::vector<TermRef> refs;
  refs.reserve(f->arity());
  for (const Arg* a : f->args()) refs.push_back({a, r.env});
  const Tuple* tuple = ResolveTuple(refs, factory);
  return std::make_pair(PredRef{f->functor(), f->arity()}, tuple);
}

}  // namespace

Database::Database()
    : factory_(std::make_unique<TermFactory>()),
      modules_(std::make_unique<ModuleManager>(this)) {
  builtins_.RegisterStandard();

  // Update predicates (paper §5.2: pipelining guarantees an evaluation
  // order, so side-effecting predicates like updates become meaningful).
  Database* db = this;
  builtins_.Register(
      "assert", 1,
      [db](std::span<const TermRef> args, TermFactory* factory)
          -> StatusOr<std::unique_ptr<BuiltinGenerator>> {
        TermRef t = args[0];
        return std::unique_ptr<BuiltinGenerator>(
            new OnceFnGenerator([db, t, factory](Trail*) {
              auto fact = ReifyFact(t, factory);
              if (!fact.ok()) return false;
              Relation* rel = db->GetOrCreateBaseRelation(fact->first);
              if (!rel->ValidateInsert(fact->second).ok()) return false;
              if (rel->Insert(fact->second)) {
                db->modules()->InvalidateDependents(fact->first);
              }
              return true;  // succeeds even if a duplicate (like Prolog)
            }));
      });
  builtins_.Register(
      "retract", 1,
      [db](std::span<const TermRef> args, TermFactory* factory)
          -> StatusOr<std::unique_ptr<BuiltinGenerator>> {
        TermRef t = args[0];
        return std::unique_ptr<BuiltinGenerator>(
            new OnceFnGenerator([db, t, factory](Trail*) {
              auto fact = ReifyFact(t, factory);
              if (!fact.ok()) return false;
              Relation* rel = db->FindBaseRelation(fact->first);
              if (rel == nullptr) return false;
              // Delete every stored fact the pattern subsumes.
              std::vector<const Tuple*> doomed;
              std::unique_ptr<TupleIterator> it = rel->Scan();
              while (const Tuple* stored = it->Next()) {
                if (SubsumesTuple(fact->second, stored)) {
                  doomed.push_back(stored);
                }
              }
              size_t removed = 0;
              for (const Tuple* d : doomed) removed += rel->Delete(d);
              if (removed > 0) {
                db->modules()->InvalidateDependents(fact->first);
              }
              return removed > 0;
            }));
      });
}

Database::~Database() {
  // Teardown ordering: member declaration order would destroy stats_
  // before the thread pool and the module instances that still hold
  // ModuleProfile pointers into it. Quiesce the users first — detach the
  // trace sink, join/destroy pool workers, drop module state — so a
  // TraceSink or a profile reader can never observe a dead registry.
  trace_sink_ = nullptr;
  pool_.reset();
  modules_.reset();
}

void Database::set_num_threads(int n) {
  if (n < 1) n = 1;
  if (n > kMaxParallelThreads) n = static_cast<int>(kMaxParallelThreads);
  num_threads_ = n;
  // Term construction only needs the hash-consing lock when fixpoint
  // workers can run; single-threaded mode takes the uncontended fast
  // path — unless concurrent sessions were enabled, which is sticky.
  factory_->set_concurrent(
      num_threads_ > 1 ||
      concurrent_sessions_.load(std::memory_order_relaxed));
}

void Database::EnableConcurrentSessions() {
  // Enable-only (engages strictly more locking), hence safe at any time.
  concurrent_sessions_.store(true, std::memory_order_relaxed);
  factory_->set_concurrent(true);
}

ThreadPool* Database::thread_pool(size_t threads) {
  if (threads < 1) threads = 1;
  // Pool workers + the calling thread service a batch, so `threads`
  // workers would leave one idle; size the pool at threads - 1.
  size_t want = threads - 1;
  if (pool_ == nullptr || (want > 0 && pool_->size() < want)) {
    pool_ = std::make_unique<ThreadPool>(want > 0 ? want : 1);
  }
  return pool_.get();
}

Relation* Database::FindBaseRelation(const PredRef& pred) const {
  MutexLock lock(&base_mu_);
  auto it = base_.find(pred);
  return it == base_.end() ? nullptr : it->second;
}

Relation* Database::GetOrCreateBaseRelation(const PredRef& pred) {
  MutexLock lock(&base_mu_);
  auto it = base_.find(pred);
  if (it != base_.end()) return it->second;
  auto rel = std::make_unique<HashRelation>(pred.sym->name, pred.arity);
  // Enrolled in snapshot publication BEFORE becoming reachable through
  // the map, so a reader can never see a shared base in its pre-shared
  // state (the mutex publishes the flag).
  rel->MarkSharedBase();
  Relation* raw = rel.get();
  owned_relations_.push_back(std::move(rel));
  base_.emplace(pred, raw);
  return raw;
}

Status Database::RegisterRelation(const PredRef& pred,
                                  std::unique_ptr<Relation> relation) {
  CORAL_CHECK(relation != nullptr);
  if (relation->arity() != pred.arity) {
    return Status::InvalidArgument("relation arity mismatch for " +
                                   pred.ToString());
  }
  WriterLock commit(&commit_mu_);
  snapshot_stale_.store(true, std::memory_order_release);
  if (auto* mr = dynamic_cast<MemoryRelation*>(relation.get())) {
    mr->MarkSharedBase();
  }
  // Non-MemoryRelation registrations (persistent / computed relations)
  // have no snapshot protocol; concurrent sessions read them live, which
  // is safe only if the implementation is itself thread-safe.
  Relation* raw = relation.get();
  {
    MutexLock lock(&base_mu_);
    owned_relations_.push_back(std::move(relation));
    base_[pred] = raw;
  }
  // The predicate's contents changed wholesale; any saved instance that
  // read it (or its previous registration) is stale.
  modules_->InvalidateDependents(pred);
  return Status::OK();
}

Status Database::RegisterExternalRelation(const PredRef& pred,
                                          Relation* relation) {
  CORAL_CHECK(relation != nullptr);
  if (relation->arity() != pred.arity) {
    return Status::InvalidArgument("relation arity mismatch for " +
                                   pred.ToString());
  }
  WriterLock commit(&commit_mu_);
  snapshot_stale_.store(true, std::memory_order_release);
  if (auto* mr = dynamic_cast<MemoryRelation*>(relation)) {
    mr->MarkSharedBase();
  }
  {
    MutexLock lock(&base_mu_);
    base_[pred] = relation;
  }
  modules_->InvalidateDependents(pred);
  return Status::OK();
}

StatusOr<bool> Database::InsertFact(const Rule& fact) {
  WriterLock commit(&commit_mu_);
  snapshot_stale_.store(true, std::memory_order_release);
  return InsertFactLocked(fact);
}

StatusOr<bool> Database::InsertFactLocked(const Rule& fact) {
  if (!fact.is_fact()) {
    return Status::InvalidArgument("not a fact: " + fact.ToString());
  }
  PredRef pred = fact.head.pred_ref();
  Relation* rel = GetOrCreateBaseRelation(pred);
  const Tuple* t = factory_->MakeTuple(fact.head.args);
  CORAL_RETURN_IF_ERROR(rel->ValidateInsert(t));
  bool changed = rel->Insert(t);
  // A saved module instance that read this predicate must never serve the
  // pre-insert answers; the point update path (ApplyUpdate) maintains
  // instead of dropping.
  if (changed) modules_->InvalidateDependents(pred);
  return changed;
}

StatusOr<size_t> Database::DeleteFacts(const Rule& fact) {
  if (!fact.is_fact()) {
    return Status::InvalidArgument("not a fact: " + fact.ToString());
  }
  WriterLock commit(&commit_mu_);
  snapshot_stale_.store(true, std::memory_order_release);
  PredRef pred = fact.head.pred_ref();
  Relation* rel = FindBaseRelation(pred);
  if (rel == nullptr) return size_t{0};
  const Tuple* pattern = factory_->MakeTuple(fact.head.args);
  std::vector<const Tuple*> doomed;
  std::unique_ptr<TupleIterator> it = rel->Scan();
  while (const Tuple* t = it->Next()) {
    if (SubsumesTuple(pattern, t)) doomed.push_back(t);
  }
  size_t removed = 0;
  for (const Tuple* t : doomed) removed += rel->Delete(t);
  if (removed > 0) modules_->InvalidateDependents(pred);
  return removed;
}

StatusOr<UpdateResult> Database::ApplyUpdate(const UpdateBatch& batch) {
  WriterLock commit(&commit_mu_);
  snapshot_stale_.store(true, std::memory_order_release);
  maintenance_counters_.updates.fetch_add(1, std::memory_order_relaxed);

  UpdateDelta delta;
  UpdateResult result;

  // Deletions first: patterns, subsumption-expanded like DeleteFacts,
  // recording the stored tuples actually removed.
  for (const Rule& fact : batch.deletes) {
    if (!fact.is_fact()) {
      return Status::InvalidArgument("not a fact: " + fact.ToString());
    }
    PredRef pred = fact.head.pred_ref();
    Relation* rel = FindBaseRelation(pred);
    if (rel == nullptr) continue;
    const Tuple* pattern = factory_->MakeTuple(fact.head.args);
    std::vector<const Tuple*> doomed;
    std::unique_ptr<TupleIterator> it = rel->Scan();
    while (const Tuple* t = it->Next()) {
      if (SubsumesTuple(pattern, t)) doomed.push_back(t);
    }
    for (const Tuple* t : doomed) {
      if (rel->Delete(t)) {
        delta.minus[pred].push_back(t);
        if (!t->IsGround()) delta.ground_only = false;
        ++result.base_deleted;
      }
    }
  }

  // Then insertions.
  for (const Rule& fact : batch.inserts) {
    if (!fact.is_fact()) {
      return Status::InvalidArgument("not a fact: " + fact.ToString());
    }
    PredRef pred = fact.head.pred_ref();
    Relation* rel = GetOrCreateBaseRelation(pred);
    const Tuple* t = factory_->MakeTuple(fact.head.args);
    CORAL_RETURN_IF_ERROR(rel->ValidateInsert(t));
    if (rel->Insert(t)) {
      delta.plus[pred].push_back(t);
      if (!t->IsGround()) delta.ground_only = false;
      ++result.base_inserted;
    }
  }

  // Net out tuples deleted and re-inserted by the same batch: the
  // relation is unchanged for them, so maintenance must see neither side.
  for (auto pit = delta.plus.begin(); pit != delta.plus.end();) {
    auto mit = delta.minus.find(pit->first);
    if (mit != delta.minus.end()) {
      std::unordered_set<const Tuple*> minus_set(mit->second.begin(),
                                                 mit->second.end());
      std::unordered_set<const Tuple*> both;
      for (const Tuple* t : pit->second) {
        if (minus_set.count(t) > 0) both.insert(t);
      }
      if (!both.empty()) {
        auto strip = [&both](std::vector<const Tuple*>* v) {
          v->erase(std::remove_if(v->begin(), v->end(),
                                  [&both](const Tuple* t) {
                                    return both.count(t) > 0;
                                  }),
                   v->end());
        };
        strip(&pit->second);
        strip(&mit->second);
      }
      if (mit->second.empty()) delta.minus.erase(mit);
    }
    pit = pit->second.empty() ? delta.plus.erase(pit) : std::next(pit);
  }

  if (!delta.empty()) {
    modules_->PropagateUpdate(delta, &result);
  }

  maintenance_counters_.maintained.fetch_add(result.maintained,
                                             std::memory_order_relaxed);
  maintenance_counters_.invalidated.fetch_add(result.invalidated,
                                              std::memory_order_relaxed);
  maintenance_counters_.derived_inserted.fetch_add(
      result.derived_inserted, std::memory_order_relaxed);
  maintenance_counters_.derived_deleted.fetch_add(
      result.derived_deleted, std::memory_order_relaxed);
  maintenance_counters_.rederived.fetch_add(result.rederived,
                                            std::memory_order_relaxed);
  return result;
}

Status Database::ApplyIndexDecl(const IndexDecl& decl) {
  PredRef pred{decl.pred, static_cast<uint32_t>(decl.pattern.size())};
  auto* rel = dynamic_cast<HashRelation*>(GetOrCreateBaseRelation(pred));
  if (rel == nullptr) {
    return Status::Unsupported("@make_index: relation " + pred.ToString() +
                               " does not support in-memory indices");
  }
  if (decl.argument_form) {
    rel->AddArgumentIndex(decl.cols);
  } else {
    rel->AddPatternIndex(decl.pattern, decl.var_count, decl.key_slots);
  }
  return Status::OK();
}

Status Database::ApplyAggSelDecl(const AggSelDecl& decl) {
  PredRef pred{decl.pred, static_cast<uint32_t>(decl.pattern.size())};
  Relation* rel = GetOrCreateBaseRelation(pred);
  rel->AddAggregateSelection(std::make_unique<AggregateSelection>(
      decl.kind, decl.pattern, decl.var_count, decl.group_args,
      decl.agg_arg));
  return Status::OK();
}

StatusOr<std::vector<Query>> Database::Consult(std::string_view text) {
  WriterLock commit(&commit_mu_);
  snapshot_stale_.store(true, std::memory_order_release);
  return ConsultLocked(text);
}

StatusOr<std::vector<Query>> Database::ConsultLocked(std::string_view text) {
  last_diagnostics_ = DiagnosticList();
  Parser parser(text, factory_.get());
  CORAL_ASSIGN_OR_RETURN(Program prog, parser.ParseProgram());
  // Annotations first: indices backfill, but aggregate selections only
  // constrain inserts made after they are attached.
  for (const IndexDecl& decl : prog.top_indexes) {
    CORAL_RETURN_IF_ERROR(ApplyIndexDecl(decl));
  }
  for (const AggSelDecl& decl : prog.top_agg_selections) {
    CORAL_RETURN_IF_ERROR(ApplyAggSelDecl(decl));
  }
  for (const Rule& fact : prog.top_facts) {
    CORAL_RETURN_IF_ERROR(InsertFactLocked(fact).status());
  }
  for (ModuleDecl& mod : prog.modules) {
    CORAL_RETURN_IF_ERROR(
        modules_->AddModule(std::move(mod), &last_diagnostics_));
  }
  return std::move(prog.queries);
}

std::shared_ptr<const ReadView> Database::AcquireReadSnapshot() {
  {
    // Fast path: nothing committed since the last publication — share
    // the cached view under the reader lock.
    ReaderLock lock(&commit_mu_);
    if (!snapshot_stale_.load(std::memory_order_acquire) &&
        view_ != nullptr) {
      return view_;
    }
  }
  // Publication is deferred to acquisition time (not done per commit) so
  // a bulk load of N facts publishes once, not N times.
  WriterLock lock(&commit_mu_);
  if (snapshot_stale_.load(std::memory_order_relaxed) || view_ == nullptr) {
    PublishLocked();
  }
  return view_;
}

void Database::PublishLocked() {
  uint64_t epoch = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  auto view = std::make_shared<ReadView>();
  view->epoch = epoch;
  {
    MutexLock lock(&base_mu_);
    for (const auto& [pred, rel] : base_) {
      auto* mr = dynamic_cast<MemoryRelation*>(rel);
      if (mr == nullptr || !mr->is_shared_base()) continue;
      if (mr->publish_dirty()) mr->PublishCommitted(epoch);
      if (const RelReadTable* table = mr->published_table()) {
        view->tables.emplace(rel, table);
      }
    }
  }
  view_ = std::move(view);
  snapshot_stale_.store(false, std::memory_order_release);
}

StatusOr<std::vector<Query>> Database::ConsultFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open file " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return Consult(buf.str());
}

StatusOr<QueryResult> Database::ExecuteQuery(const Query& query) {
  QueryResult result;
  result.query = query;

  BindEnv env(query.var_count);
  Trail trail;
  ExternalResolver resolver(this);
  std::vector<std::unique_ptr<GoalSource>> sources;
  sources.reserve(query.body.size());
  for (const Literal& lit : query.body) {
    CORAL_ASSIGN_OR_RETURN(std::unique_ptr<GoalSource> src,
                           resolver.Make(&lit, &env));
    sources.push_back(std::move(src));
  }
  Rule pseudo;
  pseudo.body = query.body;
  RuleCursor cursor(std::move(sources), ComputeBacktrackPoints(pseudo),
                    /*intelligent_bt=*/true, &trail);

  // Named variables reported in declaration order.
  std::vector<std::pair<std::string, const Variable*>> named;
  for (uint32_t slot = 0; slot < query.var_count; ++slot) {
    const std::string& name = query.var_names[slot];
    if (!name.empty() && name[0] != '_') {
      named.emplace_back(name, factory_->MakeVariable(slot, name));
    }
  }

  std::unordered_set<std::string> seen;
  while (cursor.Next()) {
    AnswerRow row;
    for (const auto& [name, var] : named) {
      VarRenamer renamer;
      const Arg* value = ResolveTerm(var, &env, factory_.get(), &renamer);
      row.bindings.emplace_back(name, value);
    }
    // Top-level answers are shown set-style: duplicates collapse.
    std::string key = row.ToString();
    if (seen.insert(key).second) result.rows.push_back(std::move(row));
  }
  cursor.UndoAll();
  CORAL_RETURN_IF_ERROR(cursor.status());
  return result;
}

StatusOr<QueryResult> Database::EvalQuery(const std::string& text) {
  std::string q = text;
  // Trim leading whitespace.
  size_t start = q.find_first_not_of(" \t\r\n");
  q = start == std::string::npos ? "" : q.substr(start);
  if (q.rfind("?-", 0) != 0 && q.rfind("?", 0) != 0) q = "?- " + q;
  size_t end = q.find_last_not_of(" \t\r\n");
  if (end != std::string::npos && q[end] != '.') q += ".";
  Parser parser(q, factory_.get());
  CORAL_ASSIGN_OR_RETURN(Program prog, parser.ParseProgram());
  if (prog.queries.size() != 1) {
    return Status::InvalidArgument("expected exactly one query");
  }
  return ExecuteQuery(prog.queries[0]);
}

StatusOr<std::string> Database::Explain(const std::string& fact_text) {
  uint32_t var_count = 0;
  CORAL_ASSIGN_OR_RETURN(const Arg* term,
                         Parser::ParseTerm(fact_text, factory_.get(),
                                           &var_count));
  if (term->kind() != ArgKind::kAtomOrFunctor) {
    return Status::InvalidArgument("expected a fact like anc(a, c)");
  }
  const auto* f = ArgCast<FunctorArg>(term);
  std::vector<TermRef> refs;
  refs.reserve(f->arity());
  for (const Arg* a : f->args()) refs.push_back({a, nullptr});
  const Tuple* tuple = ResolveTuple(refs, factory_.get());
  return modules_->ExplainLast(tuple);
}

std::string Database::ProfileReport() const {
  std::string out = obs::RenderReport(stats_);
  const obs::MaintenanceCounters& mc = maintenance_counters_;
  uint64_t updates = mc.updates.load(std::memory_order_relaxed);
  if (updates > 0) {
    out += "--- incremental updates ---\n";
    out += "update batches:    " + std::to_string(updates) + "\n";
    out += "maintained:        " +
           std::to_string(mc.maintained.load(std::memory_order_relaxed)) +
           "\n";
    out += "invalidated:       " +
           std::to_string(mc.invalidated.load(std::memory_order_relaxed)) +
           "\n";
    out += "derived inserted:  " +
           std::to_string(
               mc.derived_inserted.load(std::memory_order_relaxed)) +
           "\n";
    out += "derived deleted:   " +
           std::to_string(
               mc.derived_deleted.load(std::memory_order_relaxed)) +
           "\n";
    out += "rederived:         " +
           std::to_string(mc.rederived.load(std::memory_order_relaxed)) +
           "\n";
  }
  return out;
}

StatusOr<std::string> Database::PlanListing(const std::string& module_name,
                                            const std::string& pred,
                                            const std::string& adornment) {
  return modules_->PlanListing(module_name, pred, adornment);
}

std::string Database::PlanReport() const { return modules_->PlanReport(); }

std::string Database::BytecodeVerifierReport() {
  std::string out = "=== bytecode verifier ===\n";
  for (ModuleManager::FormBytecodeAudit& fa : modules_->AuditAllBytecode()) {
    out += "module " + fa.module + ", query form " + fa.pred;
    if (!fa.adornment.empty()) out += "(" + fa.adornment + ")";
    out += ":\n";
    if (!fa.error.empty()) {
      out += "  " + fa.error + "\n";
      continue;
    }
    out += "  compiled " + std::to_string(fa.compiled) + ", interpreted " +
           std::to_string(fa.skipped) + "\n";
    std::string audit = fa.audit.ToString();
    if (audit.empty()) audit = "no compiled programs\n";
    std::istringstream lines(audit);
    for (std::string line; std::getline(lines, line);) {
      out += "  " + line + "\n";
    }
  }
  return out;
}

StatusOr<std::string> Database::Run(std::string_view text) {
  CORAL_ASSIGN_OR_RETURN(std::vector<Query> queries, Consult(text));
  std::string out;
  for (const Query& q : queries) {
    CORAL_ASSIGN_OR_RETURN(QueryResult result, ExecuteQuery(q));
    out += result.query.ToString();
    out += "\n";
    out += result.ToString();
  }
  return out;
}

}  // namespace coral
