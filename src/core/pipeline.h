// Copyright (c) 1993-style CORAL reproduction authors.
// Pipelined (top-down) module evaluation (paper §5.2): rule evaluation
// works in a co-routining fashion — a query on a predicate tries its rules
// in textual order; when a rule succeeds the computation is frozen inside
// the scan object and the answer returned; the next get-next-tuple request
// reactivates it. Facts are used on-the-fly and never stored, at the
// potential cost of recomputation (and, as in Prolog, of non-termination
// on cyclic data). Side-effect builtins are meaningful here because the
// evaluation order is guaranteed.

#ifndef CORAL_CORE_PIPELINE_H_
#define CORAL_CORE_PIPELINE_H_

#include <atomic>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/join.h"
#include "src/lang/ast.h"
#include "src/obs/stats.h"

namespace coral {

class Database;

class PipelinedModule {
 public:
  PipelinedModule(const ModuleDecl* decl, Database* db);

  bool Defines(const PredRef& pred) const;

  /// Opens a pipelined call: answers are produced one at a time, each
  /// materialized as a tuple over the goal's arguments.
  StatusOr<std::unique_ptr<TupleIterator>> OpenQuery(
      const PredRef& pred, std::span<const TermRef> args) const;

  /// Maximum proof depth before the scan fails with an error (guards the
  /// C++ stack; Prolog-style evaluation can diverge on cyclic data).
  static constexpr int kMaxDepth = 4000;

 private:
  friend class PipelinedPredScan;
  const ModuleDecl* decl_;
  Database* db_;
  std::unordered_map<PredRef, std::vector<const Rule*>, PredRefHash> rules_;
  // Pipelined evaluation stores no relations, so the profile records rule
  // activation and answer counts only (no fixpoint or delta statistics —
  // diagnostic CRL134). Refreshed at each OpenQuery; atomic because
  // concurrent sessions may open the same (shared) module instance, and
  // the registry entry itself lives for the database's life.
  mutable std::atomic<obs::ModuleProfile*> profile_{nullptr};
};

/// A suspended computation of one predicate goal inside a pipelined
/// module; usable directly as a GoalSource for nested local literals.
class PipelinedPredScan : public GoalSource {
 public:
  PipelinedPredScan(const PipelinedModule* mod, const Literal* lit,
                    BindEnv* env, Trail* trail, int depth);
  ~PipelinedPredScan() override;

  bool Next(Trail* trail) override;
  void Abandon() override;
  const Status& status() const override { return status_; }

 protected:
  void DoReset() override;

 private:
  bool ActivateRule(const Rule* rule);

  const PipelinedModule* mod_;
  const Literal* lit_;
  BindEnv* env_;
  Trail* trail_;
  int depth_;

  size_t rule_idx_ = 0;
  const Rule* active_rule_ = nullptr;
  std::unique_ptr<BindEnv> rule_env_;
  std::unique_ptr<RuleCursor> cursor_;
  Trail::Mark rule_mark_ = 0;
  Status status_;
};

}  // namespace coral

#endif  // CORAL_CORE_PIPELINE_H_
