// Copyright (c) 1993-style CORAL reproduction authors.
// Materialized module evaluation (paper §5.3, §5.4): bottom-up fixpoint
// over the compiled module structure (SCC plans with semi-naive rule
// versions), with Basic Semi-Naive / Predicate Semi-Naive / Naive
// strategies, lazy per-iteration answer delivery (§5.4.3), the save-module
// facility (§5.4.2), and hooks for Ordered Search (§5.4.1).

#ifndef CORAL_CORE_MODULE_EVAL_H_
#define CORAL_CORE_MODULE_EVAL_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/aggregate.h"
#include "src/core/join.h"
#include "src/core/update.h"
#include "src/obs/stats.h"
#include "src/obs/trace.h"
#include "src/rel/hash_relation.h"
#include "src/rewrite/rewriter.h"
#include "src/vm/vm.h"

namespace coral {

class Database;

/// Evaluation counters, exposed for tests and the benchmark harness.
struct EvalStats {
  uint64_t solutions = 0;   // rule-body solutions enumerated
  uint64_t inserts = 0;     // tuples newly inserted (after dup checks)
  uint64_t iterations = 0;  // fixpoint iterations across SCCs
};

/// One recorded derivation step (the Explanation tool, enabled by the
/// @explain module annotation): head was derived by rule `rule_index`
/// from the listed body facts (relation literals only).
struct Derivation {
  PredRef head_pred;
  const Tuple* head = nullptr;
  uint32_t rule_index = 0;
  std::vector<std::pair<PredRef, const Tuple*>> body;
};

/// Builds goal sources for literals that are NOT module-internal:
/// builtins, base relations, exports of other modules (inter-module
/// calls, paper §5.6), or freshly auto-created empty relations.
class ExternalResolver {
 public:
  explicit ExternalResolver(Database* db) : db_(db) {}
  StatusOr<std::unique_ptr<GoalSource>> Make(const Literal* lit,
                                             BindEnv* env) const;

 private:
  Database* db_;
};

/// The run-time state of one materialized (module, query form) activation:
/// relations for every internal predicate, fixpoint bookkeeping, and the
/// trail. Non-save modules create one per call and discard it afterwards
/// (paper §5.4.2 default); save modules keep one alive across calls.
class MaterializedInstance {
 public:
  MaterializedInstance(const RewrittenProgram* prog, const ModuleDecl* decl,
                       Database* db);
  ~MaterializedInstance();

  /// Creates internal relations; attaches aggregate selections, multiset
  /// flags, declared and optimizer-chosen indices.
  Status Init();

  /// Registers the query's bound arguments as a magic seed. With the
  /// save-module facility, re-seeding an already-covered subgoal is a
  /// no-op; a new subgoal resumes evaluation incrementally.
  Status Seed(std::span<const TermRef> query_args);

  /// Runs the fixpoint to completion (all SCCs stable).
  Status RunToCompletion();

  /// Lazy evaluation (paper §5.4.3): advances by one fixpoint iteration
  /// (or phase); sets *done when evaluation is complete. Callers poll the
  /// answer relation between steps.
  Status RunStep(bool* done);

  Relation* answer_relation() const;
  Relation* internal(const PredRef& pred) const;
  const RewrittenProgram& prog() const { return *prog_; }
  const ModuleDecl& decl() const { return *decl_; }
  const EvalStats& stats() const { return stats_; }
  bool in_step() const { return in_step_; }
  bool complete() const { return complete_; }
  Database* db() const { return db_; }

  /// Recorded derivations (empty unless the module has @explain).
  const std::vector<Derivation>& derivations() const { return derivations_; }
  /// Renders the derivation tree of `fact` (an answer or intermediate
  /// tuple). Predicates are shown with their original names.
  std::string Explain(const Tuple* fact) const;

  /// The profile this activation records into; nullptr unless the module
  /// has @profile or Database::set_profiling is on.
  const obs::ModuleProfile* profile() const { return profile_; }

  /// The compiled join bytecode of this form (owned by the module
  /// manager's form cache); set before Init. Whether it runs is decided
  /// per activation: Database::use_vm(), @no_vm, and per-rule bind checks
  /// (docs/VM.md fallback rules).
  void set_vm_program(const vm::ModuleProgram* vm) { vm_module_ = vm; }
  /// True when at least one rule version of this activation is bound to
  /// the VM (test hook).
  bool vm_active() const { return vm_active_; }

  // --- incremental view maintenance (maintenance.cc) ---
  /// True when this completed activation's shape is covered by the
  /// maintenance algorithms: materialized Basic Semi-Naive save module,
  /// no Ordered Search / @explain, no negation, no aggregation (rule
  /// heads or selections), no multiset relations, no inter-module body
  /// literals, no side-effecting builtins, and every stored body
  /// predicate an in-memory relation. Uncovered shapes fall back to
  /// invalidation (the caller drops the instance).
  bool CanMaintain() const;

  /// Absorbs one committed base-relation delta into this completed
  /// instance: support-count propagation (the counting algorithm) for
  /// non-recursive SCCs and delete-rederive (DRed) plus a resumed
  /// semi-naive fixpoint for recursive ones (docs/MAINTENANCE.md). The
  /// caller checked CanMaintain and serializes writers. On error the
  /// instance is half-updated and MUST be discarded.
  Status Maintain(const UpdateDelta& delta, UpdateResult* result);

 private:
  friend class OrderedSearchEval;
  friend class MaintenancePass;

  // --- observability (fixpoint.cc hooks) ---
  /// The display (pre-rewriting) name of an internal predicate.
  std::string DisplayName(const PredRef& pred) const;
  /// Runs RunIteration wrapped in iteration bookkeeping: trace events,
  /// wall/worker time and delta sizes when profiling or tracing is on.
  Status RunIterationObserved(size_t scc_idx, bool* changed);

  // --- fixpoint engine (fixpoint.cc) ---
  Status RunOnceRules(size_t scc_idx);
  Status RunIteration(size_t scc_idx, bool* changed);
  /// Runs every SCC to a local fixpoint once; used by Ordered Search.
  Status RunGlobalPass(bool* changed);
  StatusOr<bool> ApplyVersion(size_t scc_idx, const RuleVersion& v,
                              bool naive_override,
                              const std::unordered_map<PredRef, Mark,
                                                       PredRefHash>* cur);
  StatusOr<std::unique_ptr<GoalSource>> MakeSource(const Literal* lit,
                                                   BindEnv* env, Mark from,
                                                   Mark to,
                                                   PartitionSpec part = {});

  // --- parallel fixpoint engine (fixpoint.cc) ---
  /// Worker count for this instance: @parallel(N) override or the
  /// Database-wide default, forced to 1 when the instance is not
  /// parallel-eligible (see parallel_safe_).
  size_t EffectiveThreads() const;
  /// One BSN/Naive iteration evaluated by `nthreads` workers over
  /// hash-partitioned delta scans with per-worker insert buffers, merged
  /// serially at the barrier. Produces relation sets identical to
  /// RunIteration: all reads are bounded by the iteration-start snapshot,
  /// so rule applications are data-independent within the iteration.
  Status RunIterationParallel(size_t scc_idx, bool* changed,
                              size_t nthreads);
  /// Worker body: one non-aggregate rule version on one delta partition;
  /// derivations land in `buffer`, never in the relations. trail/stats
  /// are worker-local.
  Status ApplyVersionPartitioned(
      size_t scc_idx, const RuleVersion& v, bool naive_override,
      const std::unordered_map<PredRef, Mark, PredRefHash>* cur,
      uint32_t part_index, uint32_t part_count, Trail* trail,
      InsertBuffer* buffer, EvalStats* stats);
  std::pair<Mark, Mark> WindowFor(size_t scc_idx, const PredRef& pred,
                                  RangeSel sel,
                                  const std::unordered_map<PredRef, Mark,
                                                           PredRefHash>* cur);
  bool HeadInsert(const PredRef& pred, const Tuple* t);
  BindEnv* EnvFor(size_t scc_idx, bool once, size_t idx,
                  uint32_t var_count);
  const AggHeadSpec* AggSpecFor(uint32_t rule_index);
  Relation* staging(const PredRef& magic_pred) const;

  // --- join bytecode VM (fixpoint.cc + Init) ---
  /// A compiled rule version bound to this activation's relations.
  struct VmBoundRule {
    const vm::RuleProgram* prog = nullptr;
    std::vector<Relation*> rels;           // per level
    std::vector<HashRelation*> hash_rels;  // per level; null = never probe
    HashRelation* head = nullptr;
  };
  /// Resolves relations for every compiled version; disqualifies rules
  /// whose bind-time shape the VM cannot run (multiset or non-internal
  /// head, literals that now resolve to module calls). Called from Init.
  void BindVmPrograms();
  /// The bound program for a version, or null (interpret).
  const VmBoundRule* VmRuleFor(size_t scc_idx, bool once,
                               size_t version_idx) const;
  /// The index of `v` within its version table (versions or once).
  size_t VersionIndex(size_t scc_idx, const RuleVersion& v) const;

  const RewrittenProgram* prog_;
  const ModuleDecl* decl_;
  Database* db_;

  std::unordered_map<PredRef, std::unique_ptr<HashRelation>, PredRefHash>
      internal_;
  std::unordered_map<PredRef, std::unique_ptr<HashRelation>, PredRefHash>
      staging_;  // Ordered Search: magic-head inserts are intercepted here
  Trail trail_;

  // True when every evaluation strategy/feature in use is covered by the
  // parallel engine: materialized BSN/Naive, no Ordered Search, no
  // @explain, and no body literal that calls another module or a
  // side-effecting builtin (assert/retract). Computed once in Init.
  bool parallel_safe_ = false;

  // Lazy / resumable evaluation state.
  size_t cur_scc_ = 0;
  std::vector<bool> once_done_;
  bool complete_ = false;
  bool in_step_ = false;
  std::vector<const Tuple*> pending_seeds_;  // Ordered Search seeds

  // Per-SCC previous marks (BSN) and per-version marks (PSN).
  std::vector<std::unordered_map<PredRef, Mark, PredRefHash>> prev_marks_;
  std::vector<std::vector<Mark>> psn_marks_;

  // Cached rule environments and aggregation specs.
  std::vector<std::vector<std::unique_ptr<BindEnv>>> version_envs_;
  std::vector<std::vector<std::unique_ptr<BindEnv>>> once_envs_;
  std::unordered_map<uint32_t, AggHeadSpec> agg_specs_;

  // Incremental-maintenance state (maintenance.cc). Support counts map
  // each derived tuple of a non-recursive ("counting") SCC to its number
  // of rule derivations in the completed fixpoint. Built lazily at the
  // first maintenance pass against the reconstructed pre-update state;
  // dropped whenever a new magic seed resumes evaluation (the resumed
  // run derives tuples the counts would miss).
  bool counts_valid_ = false;
  std::unordered_map<PredRef, std::unordered_map<const Tuple*, int64_t>,
                     PredRefHash>
      support_counts_;
  // Tuples the engine inserted directly (magic seeds): pinned — never
  // deleted by maintenance, whatever their support count.
  std::unordered_map<PredRef, std::unordered_set<const Tuple*>, PredRefHash>
      engine_seeds_;
  // Forces EffectiveThreads() == 1 while a maintenance pass (including
  // its resumed fixpoint) runs: delta bookkeeping is single-threaded.
  bool maintenance_mode_ = false;
  // Argument indexes for the maintenance joins' probe patterns (which
  // the evaluation-time planned indexes need not cover) are created once
  // per instance, at the first pass.
  bool maintenance_indexes_built_ = false;

  EvalStats stats_;
  std::vector<Derivation> derivations_;  // @explain only

  // Join bytecode, bound per activation in Init (null = interpret). The
  // tables mirror SccPlan::versions / SccPlan::once by index.
  const vm::ModuleProgram* vm_module_ = nullptr;
  bool vm_active_ = false;
  std::vector<std::vector<VmBoundRule>> vm_versions_;
  std::vector<std::vector<VmBoundRule>> vm_once_;

  // Observability (src/obs/): both nullptr in the default configuration,
  // making every hook a single pointer test. profile_ is bound once in
  // Init (rule slots must exist first); trace_ is re-fetched from the
  // Database at each RunStep so sinks can attach to live save modules.
  obs::ModuleProfile* profile_ = nullptr;
  obs::TraceSink* trace_ = nullptr;
  std::vector<uint64_t> last_worker_ns_;  // filled by RunIterationParallel
};

/// TupleIterator over a materialized instance's answers that drives lazy
/// evaluation: when the answers seen so far are exhausted, it runs more
/// fixpoint iterations (paper §5.6: "answers are returned at the end of
/// each fixpoint iteration in the called module; further iterations are
/// carried out if more answers are requested").
class LazyAnswerIterator : public TupleIterator {
 public:
  LazyAnswerIterator(std::shared_ptr<MaterializedInstance> inst,
                     const Tuple* goal);
  const Tuple* Next() override;
  const Status& status() const override { return status_; }

 private:
  std::shared_ptr<MaterializedInstance> inst_;
  const Tuple* goal_;
  std::unique_ptr<BindEnv> goal_env_;
  Mark seen_ = 0;
  std::unique_ptr<TupleIterator> batch_;
  bool done_ = false;
  Status status_;
};

}  // namespace coral

#endif  // CORAL_CORE_MODULE_EVAL_H_
