// Copyright (c) 1993-style CORAL reproduction authors.
// Incremental view maintenance for completed save-module instances
// (docs/MAINTENANCE.md). Non-recursive ("counting") SCCs carry a support
// count per derived tuple — the number of rule-body derivations — and
// base deltas are propagated as count increments/decrements, deleting a
// tuple exactly when its count reaches zero. Recursive SCCs use
// delete-rederive (DRed): an overestimate of deletions is cascaded over
// the pre-update state, candidates that survive a rederivation probe are
// kept, and the SCC's semi-naive fixpoint is resumed from the
// pre-maintenance marks to close insertions transitively (save modules
// compile every internal literal with a delta version, so lower-stratum
// deltas flow through the resumed windows automatically).
//
// State reconstruction: ApplyUpdate mutates base relations before
// Maintain runs, so during a pass the pre-update ("old") contents of a
// changed base predicate are reconstructed as live \ plus ∪ minus, and
// the half-updated ("mid") state as live \ plus. Internal relations are
// still old until the pass itself touches them.

#include <cstdint>
#include <memory>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/core/database.h"
#include "src/core/join.h"
#include "src/core/module_eval.h"
#include "src/core/module_manager.h"
#include "src/core/update.h"
#include "src/data/unify.h"
#include "src/rel/hash_relation.h"
#include "src/rel/memory_relation.h"
#include "src/rewrite/existential.h"
#include "src/util/logging.h"

namespace coral {

namespace {

/// Builtins whose evaluation has side effects; re-running them during a
/// maintenance pass would repeat the effects, so such modules fall back
/// to invalidation.
bool IsSideEffectingBuiltin(const std::string& name) {
  return name == "assert" || name == "retract" || name == "write" ||
         name == "writeln";
}

}  // namespace

/// One maintenance pass over one completed MaterializedInstance. Owns the
/// per-predicate delta lists threaded between SCCs; reads/writes the
/// instance's relations, marks, and support counts through friendship.
class MaintenancePass {
 public:
  MaintenancePass(MaterializedInstance* inst, UpdateResult* result)
      : inst_(inst), db_(inst->db_), result_(result) {}

  Status Run(const UpdateDelta& delta);

 private:
  /// The net delta of one predicate, as both list (for join positions)
  /// and set (for filtering). plus and minus are disjoint.
  struct PredDelta {
    std::vector<const Tuple*> plus;
    std::vector<const Tuple*> minus;
    std::unordered_set<const Tuple*> plus_set;
    std::unordered_set<const Tuple*> minus_set;
  };

  /// Which snapshot a non-delta body position is evaluated against.
  enum class BodyState {
    kNew,  // live contents
    kMid,  // live \ plus (old minus the deletions already applied)
    kOld,  // live \ plus ∪ minus (pre-update contents)
  };

  const RewrittenProgram& prog() const { return *inst_->prog_; }
  const std::vector<SccPlan>& sccs() const {
    return inst_->prog_->seminaive.sccs;
  }

  PredDelta* FindDelta(const PredRef& p) {
    auto it = deltas_.find(p);
    return it == deltas_.end() ? nullptr : &it->second;
  }
  PredDelta& DeltaFor(const PredRef& p) { return deltas_[p]; }

  /// The stored relation a body literal scans: module-internal first,
  /// else the registered base relation (created empty if absent, so an
  /// update mentioning a never-asserted predicate still evaluates).
  Relation* StoredRel(const PredRef& p) const {
    Relation* rel = inst_->internal(p);
    if (rel != nullptr) return rel;
    return db_->GetOrCreateBaseRelation(p);
  }

  /// True when the literal scans a stored relation (internal or base) —
  /// as opposed to a builtin. CanMaintain already excluded negation,
  /// module calls, and side-effecting builtins.
  bool IsStored(const Literal& lit) const {
    PredRef p = lit.pred_ref();
    if (inst_->internal(p) != nullptr) return true;
    return db_->builtins()->Find(p.sym->name, p.arity) == nullptr;
  }

  /// Magic seeds (and defensively pinned zero-count tuples) are
  /// engine-fed: maintenance never deletes them.
  bool Pinned(const PredRef& p, const Tuple* t) const {
    auto it = inst_->engine_seeds_.find(p);
    return it != inst_->engine_seeds_.end() && it->second.count(t) > 0;
  }

  /// The distinct rules of one SCC plan (its versions share rule
  /// indices), in deterministic order.
  std::vector<uint32_t> SccRules(const SccPlan& plan) const {
    std::set<uint32_t> idx;
    for (const RuleVersion& v : plan.versions) idx.insert(v.rule_index);
    for (const RuleVersion& v : plan.once) idx.insert(v.rule_index);
    return std::vector<uint32_t>(idx.begin(), idx.end());
  }

  bool SccIsRecursive(const SccPlan& plan) const {
    std::unordered_set<PredRef, PredRefHash> members(plan.preds.begin(),
                                                     plan.preds.end());
    for (uint32_t ri : SccRules(plan)) {
      for (const Literal& lit : prog().rules[ri].body) {
        if (members.count(lit.pred_ref()) > 0) return true;
      }
    }
    return false;
  }

  /// True when some stored body predicate of the SCC has a pending delta.
  bool SccAffected(const SccPlan& plan) {
    for (uint32_t ri : SccRules(plan)) {
      for (const Literal& lit : prog().rules[ri].body) {
        if (!IsStored(lit)) continue;
        PredDelta* d = FindDelta(lit.pred_ref());
        if (d != nullptr && (!d->plus.empty() || !d->minus.empty())) {
          return true;
        }
      }
    }
    return false;
  }

  StatusOr<std::unique_ptr<GoalSource>> MakeStateSource(const Literal* lit,
                                                        BindEnv* env,
                                                        BodyState state);

  using HeadFn = std::function<Status(const Tuple*)>;

  /// Evaluates `rule` with body position `delta_pos` iterating `dlist`,
  /// positions before it in `before` state and after it in `after` state
  /// (the standard delta-join decomposition; delta_pos == -1 evaluates
  /// every position in `after`). Calls `on_head` with the resolved ground
  /// head tuple of each body solution.
  Status EvalRule(const Rule& rule, int delta_pos,
                  const std::vector<const Tuple*>* dlist, BodyState before,
                  BodyState after, const HeadFn& on_head);

  /// Builds support counts for every counting SCC against the
  /// reconstructed pre-update state. Must run before the pass mutates any
  /// internal relation. Live tuples with no counted derivation (engine
  /// artifacts) are pinned.
  Status BuildCounts();

  /// Creates (once per instance) the argument indexes the maintenance
  /// joins probe with. The evaluation-time planned indexes cover the
  /// planned join orders only; the pass's delta-first orders and the
  /// head-bound rederivation probes Select on other column sets, and an
  /// unindexed Select degenerates to a full scan per probe — turning
  /// every delta join O(relation).
  void EnsureProbeIndexes();

  Status ProcessCountingScc(const SccPlan& plan);
  Status ProcessRecursiveScc(size_t scc_idx);

  /// True when some rule of `plan` with head `p` re-derives `t` from the
  /// current live state.
  StatusOr<bool> Rederivable(const SccPlan& plan, const PredRef& p,
                             const Tuple* t);

  MaterializedInstance* inst_;
  Database* db_;
  UpdateResult* result_;

  std::unordered_map<PredRef, PredDelta, PredRefHash> deltas_;
  /// Pre-maintenance marks of every internal relation; the resumed
  /// fixpoint's delta windows and the final-delta scans start here.
  std::unordered_map<PredRef, Mark, PredRefHash> m0_;
  Trail trail_;
};

void MaintenancePass::EnsureProbeIndexes() {
  if (inst_->maintenance_indexes_built_) return;
  inst_->maintenance_indexes_built_ = true;
  // Requests an index on the columns of `lit` that are ground at probe
  // time given `bound` variables: constants and fully-bound terms.
  auto request = [&](const Literal& lit, const std::set<uint32_t>& bound) {
    if (!IsStored(lit)) return;
    std::vector<uint32_t> cols;
    for (size_t k = 0; k < lit.args.size(); ++k) {
      std::set<uint32_t> vars;
      CollectVars(lit.args[k], &vars);
      bool ground = true;
      for (uint32_t v : vars) ground = ground && bound.count(v) > 0;
      if (ground) cols.push_back(static_cast<uint32_t>(k));
    }
    if (cols.empty()) return;
    auto* hr = dynamic_cast<HashRelation*>(StoredRel(lit.pred_ref()));
    if (hr != nullptr) hr->AddArgumentIndex(std::move(cols));
  };
  for (const Rule& rule : prog().rules) {
    // Delta-first orders: the delta literal binds its variables, then
    // the remaining literals follow in body order (EvalRule).
    for (size_t di = 0; di < rule.body.size(); ++di) {
      if (!IsStored(rule.body[di])) continue;
      std::set<uint32_t> bound = VarsOfLiteral(rule.body[di]);
      for (size_t j = 0; j < rule.body.size(); ++j) {
        if (j == di) continue;
        request(rule.body[j], bound);
        for (uint32_t v : VarsOfLiteral(rule.body[j])) bound.insert(v);
      }
    }
    // Rederivation probes run the body in order with the head bound.
    std::set<uint32_t> head_bound;
    for (const Arg* a : rule.head.args) CollectVars(a, &head_bound);
    for (const Literal& lit : rule.body) {
      request(lit, head_bound);
      for (uint32_t v : VarsOfLiteral(lit)) head_bound.insert(v);
    }
  }
}

StatusOr<std::unique_ptr<GoalSource>> MaintenancePass::MakeStateSource(
    const Literal* lit, BindEnv* env, BodyState state) {
  if (!IsStored(*lit)) {
    // Builtin: state-independent.
    return inst_->MakeSource(lit, env, 0, kMaxMark);
  }
  PredRef p = lit->pred_ref();
  Relation* rel = StoredRel(p);
  PredDelta* d = FindDelta(p);
  const std::unordered_set<const Tuple*>* plus =
      (d != nullptr && !d->plus_set.empty()) ? &d->plus_set : nullptr;
  switch (state) {
    case BodyState::kNew:
      return std::unique_ptr<GoalSource>(
          std::make_unique<RelationGoalSource>(lit, env, rel, 0, kMaxMark));
    case BodyState::kMid:
      if (plus == nullptr) {
        return std::unique_ptr<GoalSource>(
            std::make_unique<RelationGoalSource>(lit, env, rel, 0, kMaxMark));
      }
      return std::unique_ptr<GoalSource>(
          std::make_unique<FilteredRelationGoalSource>(lit, env, rel, plus));
    case BodyState::kOld: {
      std::unique_ptr<GoalSource> mid;
      if (plus == nullptr) {
        mid = std::make_unique<RelationGoalSource>(lit, env, rel, 0, kMaxMark);
      } else {
        mid = std::make_unique<FilteredRelationGoalSource>(lit, env, rel, plus);
      }
      if (d == nullptr || d->minus.empty()) return mid;
      std::vector<std::unique_ptr<GoalSource>> parts;
      parts.push_back(std::move(mid));
      parts.push_back(
          std::make_unique<TupleListGoalSource>(lit, env, &d->minus));
      return std::unique_ptr<GoalSource>(
          std::make_unique<UnionGoalSource>(std::move(parts)));
    }
  }
  return Status::Internal("unreachable body state");
}

Status MaintenancePass::EvalRule(const Rule& rule, int delta_pos,
                                 const std::vector<const Tuple*>* dlist,
                                 BodyState before, BodyState after,
                                 const HeadFn& on_head) {
  BindEnv env(rule.var_count);
  // Delta-first join order: the delta list is the smallest input by far,
  // and leading with it binds its literal's variables so the remaining
  // positions Select with bound arguments (index probes instead of full
  // scans — the delta-join would otherwise cost O(relation) per pass).
  // Only the delta literal moves; the relative order of everything else
  // is preserved, so every literal still follows its original binders
  // (which is what keeps builtins evaluable).
  std::vector<size_t> order;
  order.reserve(rule.body.size());
  if (delta_pos >= 0) order.push_back(static_cast<size_t>(delta_pos));
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (static_cast<int>(i) != delta_pos) order.push_back(i);
  }
  std::vector<std::unique_ptr<GoalSource>> sources;
  sources.reserve(rule.body.size());
  for (size_t i : order) {
    const Literal& lit = rule.body[i];
    if (static_cast<int>(i) == delta_pos) {
      sources.push_back(
          std::make_unique<TupleListGoalSource>(&lit, &env, dlist));
    } else {
      BodyState state = static_cast<int>(i) < delta_pos ? before : after;
      CORAL_ASSIGN_OR_RETURN(std::unique_ptr<GoalSource> src,
                             MakeStateSource(&lit, &env, state));
      sources.push_back(std::move(src));
    }
  }
  RuleCursor cursor(std::move(sources),
                    std::vector<int>(rule.body.size(), -1),
                    /*intelligent_bt=*/false, &trail_);
  std::vector<TermRef> head_refs(rule.head.args.size());
  Status st;
  while (cursor.Next()) {
    for (size_t i = 0; i < rule.head.args.size(); ++i) {
      head_refs[i] = TermRef{rule.head.args[i], &env};
    }
    const Tuple* t = ResolveTuple(head_refs, db_->factory());
    if (t == nullptr || !t->IsGround()) {
      st = Status::Unsupported(
          "maintenance: non-ground derived tuple for " +
          rule.head.pred_ref().ToString());
      break;
    }
    st = on_head(t);
    if (!st.ok()) break;
  }
  cursor.UndoAll();
  if (!st.ok()) return st;
  return cursor.status();
}

Status MaintenancePass::BuildCounts() {
  inst_->support_counts_.clear();
  for (const SccPlan& plan : sccs()) {
    if (SccIsRecursive(plan)) continue;
    for (uint32_t ri : SccRules(plan)) {
      const Rule& rule = prog().rules[ri];
      PredRef h = rule.head.pred_ref();
      auto& counts = inst_->support_counts_[h];
      CORAL_RETURN_IF_ERROR(EvalRule(
          rule, /*delta_pos=*/-1, nullptr, BodyState::kOld, BodyState::kOld,
          [&counts](const Tuple* t) {
            ++counts[t];
            return Status::OK();
          }));
    }
    // Pin live tuples the counting pass cannot account for (engine-fed
    // facts): they must survive any sequence of decrements.
    for (const PredRef& p : plan.preds) {
      Relation* rel = inst_->internal(p);
      if (rel == nullptr) continue;
      const auto& counts = inst_->support_counts_[p];
      std::unique_ptr<TupleIterator> it = rel->Scan();
      while (const Tuple* t = it->Next()) {
        if (counts.find(t) == counts.end()) {
          inst_->engine_seeds_[p].insert(t);
        }
      }
    }
  }
  inst_->counts_valid_ = true;
  return Status::OK();
}

Status MaintenancePass::ProcessCountingScc(const SccPlan& plan) {
  // Phase 1: accumulate count deltas per head tuple. The delta join for
  // body position i sees positions j<i in the post-change state and j>i
  // in the pre-change state, so each lost/gained derivation is counted
  // exactly once across positions (the telescoping decomposition).
  std::unordered_map<PredRef,
                     std::unordered_map<const Tuple*, int64_t>, PredRefHash>
      dcounts;
  for (uint32_t ri : SccRules(plan)) {
    const Rule& rule = prog().rules[ri];
    PredRef h = rule.head.pred_ref();
    for (size_t i = 0; i < rule.body.size(); ++i) {
      const Literal& lit = rule.body[i];
      if (!IsStored(lit)) continue;
      PredDelta* d = FindDelta(lit.pred_ref());
      if (d == nullptr) continue;
      if (!d->minus.empty()) {
        CORAL_RETURN_IF_ERROR(EvalRule(
            rule, static_cast<int>(i), &d->minus, BodyState::kMid,
            BodyState::kOld, [&dcounts, &h](const Tuple* t) {
              --dcounts[h][t];
              return Status::OK();
            }));
      }
      if (!d->plus.empty()) {
        CORAL_RETURN_IF_ERROR(EvalRule(
            rule, static_cast<int>(i), &d->plus, BodyState::kNew,
            BodyState::kMid, [&dcounts, &h](const Tuple* t) {
              ++dcounts[h][t];
              return Status::OK();
            }));
      }
    }
  }

  // Phase 2: apply. Count transitions decide relation changes; the
  // resulting head deltas feed downstream SCCs.
  for (auto& [h, dc] : dcounts) {
    Relation* rel = inst_->internal(h);
    if (rel == nullptr) {
      return Status::Internal("maintenance: counting head " + h.ToString() +
                              " has no internal relation");
    }
    auto& counts = inst_->support_counts_[h];
    PredDelta& hd = DeltaFor(h);
    for (const auto& [t, delta] : dc) {
      if (delta == 0) continue;
      auto it = counts.find(t);
      int64_t old_count = it == counts.end() ? 0 : it->second;
      int64_t new_count = old_count + delta;
      bool pinned = Pinned(h, t);
      if (new_count < 0) {
        if (!pinned) {
          return Status::Internal("maintenance: support count underflow for " +
                                  h.ToString());
        }
        new_count = 0;
      }
      if (new_count == 0) {
        if (it != counts.end()) counts.erase(it);
      } else if (it != counts.end()) {
        it->second = new_count;
      } else {
        counts.emplace(t, new_count);
      }
      if (old_count > 0 && new_count == 0 && !pinned) {
        if (!rel->Delete(t)) {
          return Status::Internal("maintenance: counted tuple missing from " +
                                  h.ToString());
        }
        hd.minus.push_back(t);
        hd.minus_set.insert(t);
        ++result_->derived_deleted;
      } else if (old_count == 0 && new_count > 0) {
        if (rel->Insert(t)) {
          hd.plus.push_back(t);
          hd.plus_set.insert(t);
          ++result_->derived_inserted;
        }
      }
    }
  }
  return Status::OK();
}

StatusOr<bool> MaintenancePass::Rederivable(const SccPlan& plan,
                                            const PredRef& p, const Tuple* t) {
  for (uint32_t ri : SccRules(plan)) {
    const Rule& rule = prog().rules[ri];
    if (!(rule.head.pred_ref() == p)) continue;
    BindEnv env(rule.var_count);
    BindEnv tuple_env(0);
    tuple_env.EnsureSize(t->var_count());
    Trail::Mark base = trail_.mark();
    if (!UnifyTupleWithLiteral(t, &tuple_env, rule.head, &env, &trail_)) {
      trail_.UndoTo(base);
      continue;
    }
    std::vector<std::unique_ptr<GoalSource>> sources;
    Status build;
    for (const Literal& lit : rule.body) {
      auto src = MakeStateSource(&lit, &env, BodyState::kNew);
      if (!src.ok()) {
        build = src.status();
        break;
      }
      sources.push_back(std::move(src).value());
    }
    if (!build.ok()) {
      trail_.UndoTo(base);
      return build;
    }
    RuleCursor cursor(std::move(sources),
                      std::vector<int>(rule.body.size(), -1),
                      /*intelligent_bt=*/false, &trail_);
    bool found = cursor.Next();
    Status st = cursor.status();
    cursor.UndoAll();
    trail_.UndoTo(base);
    if (!st.ok()) return st;
    if (found) return true;
  }
  return false;
}

Status MaintenancePass::ProcessRecursiveScc(size_t scc_idx) {
  const SccPlan& plan = sccs()[scc_idx];
  std::unordered_set<PredRef, PredRefHash> members(plan.preds.begin(),
                                                   plan.preds.end());
  std::vector<uint32_t> rules = SccRules(plan);

  // Phase 1 (DRed overestimate): every derivation that used a deleted
  // tuple marks its head as a deletion candidate; candidates cascade
  // through same-SCC rules over the pre-update state until stable.
  std::unordered_map<PredRef, std::unordered_set<const Tuple*>, PredRefHash>
      cand;
  std::unordered_map<PredRef, std::vector<const Tuple*>, PredRefHash> frontier;
  auto add_candidate = [&](const PredRef& h, Relation* hrel, const Tuple* t) {
    if (Pinned(h, t)) return;
    if (!hrel->Contains(t)) return;
    if (!cand[h].insert(t).second) return;
    frontier[h].push_back(t);
  };
  for (uint32_t ri : rules) {
    const Rule& rule = prog().rules[ri];
    PredRef h = rule.head.pred_ref();
    Relation* hrel = inst_->internal(h);
    if (hrel == nullptr) continue;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      const Literal& lit = rule.body[i];
      if (!IsStored(lit)) continue;
      PredRef p = lit.pred_ref();
      if (members.count(p) > 0) continue;  // same-SCC deltas cascade below
      PredDelta* d = FindDelta(p);
      if (d == nullptr || d->minus.empty()) continue;
      CORAL_RETURN_IF_ERROR(EvalRule(
          rule, static_cast<int>(i), &d->minus, BodyState::kOld,
          BodyState::kOld, [&](const Tuple* t) {
            add_candidate(h, hrel, t);
            return Status::OK();
          }));
    }
  }
  while (!frontier.empty()) {
    auto cur = std::move(frontier);
    frontier.clear();
    for (uint32_t ri : rules) {
      const Rule& rule = prog().rules[ri];
      PredRef h = rule.head.pred_ref();
      Relation* hrel = inst_->internal(h);
      if (hrel == nullptr) continue;
      for (size_t i = 0; i < rule.body.size(); ++i) {
        const Literal& lit = rule.body[i];
        if (!IsStored(lit)) continue;
        PredRef p = lit.pred_ref();
        if (members.count(p) == 0) continue;
        auto fit = cur.find(p);
        if (fit == cur.end() || fit->second.empty()) continue;
        CORAL_RETURN_IF_ERROR(EvalRule(
            rule, static_cast<int>(i), &fit->second, BodyState::kOld,
            BodyState::kOld, [&](const Tuple* t) {
              add_candidate(h, hrel, t);
              return Status::OK();
            }));
      }
    }
  }

  // Phase 2: delete the overestimate.
  std::unordered_map<PredRef, std::vector<const Tuple*>, PredRefHash> deleted;
  std::unordered_map<PredRef, std::unordered_set<const Tuple*>, PredRefHash>
      deleted_set;
  for (auto& [p, set] : cand) {
    Relation* rel = inst_->internal(p);
    for (const Tuple* t : set) {
      if (rel->Delete(t)) {
        deleted[p].push_back(t);
        deleted_set[p].insert(t);
      }
    }
  }

  // Phase 3: rederive. A candidate with an alternative derivation from
  // the post-deletion state is re-inserted; its re-insertion lands above
  // m0 and seeds the resumed fixpoint, which closes transitive
  // rederivations.
  for (auto& [p, vec] : deleted) {
    Relation* rel = inst_->internal(p);
    for (const Tuple* t : vec) {
      CORAL_ASSIGN_OR_RETURN(bool again, Rederivable(plan, p, t));
      if (again) {
        rel->Insert(t);
        ++result_->rederived;
      }
    }
  }

  // Phase 4: base-predicate insertions. Internal-predicate insertions
  // ride the delta windows of the resumed fixpoint (save modules compile
  // every internal literal with a delta version), but base predicates
  // have no delta versions — join their new tuples in explicitly.
  for (uint32_t ri : rules) {
    const Rule& rule = prog().rules[ri];
    PredRef h = rule.head.pred_ref();
    for (size_t i = 0; i < rule.body.size(); ++i) {
      const Literal& lit = rule.body[i];
      if (!IsStored(lit)) continue;
      PredRef p = lit.pred_ref();
      if (inst_->internal(p) != nullptr) continue;
      PredDelta* d = FindDelta(p);
      if (d == nullptr || d->plus.empty()) continue;
      CORAL_RETURN_IF_ERROR(EvalRule(
          rule, static_cast<int>(i), &d->plus, BodyState::kNew,
          BodyState::kMid, [&](const Tuple* t) {
            inst_->HeadInsert(h, t);
            return Status::OK();
          }));
    }
  }

  // Phase 5: close the insertions transitively with a delta-first
  // semi-naive loop over the pass's own state sources. Rederivations,
  // kicked insertions, and lower-stratum internal deltas all sit above
  // their relations' pre-maintenance marks; each round joins exactly
  // that window (the frontier) against the live state, so the cost
  // scales with the delta, not the instance (the engine's own
  // RunIteration walks its planned join orders, which are not
  // delta-first and re-scan whole base relations per iteration). Set
  // semantics make the all-live evaluation safe: a derivation using two
  // new tuples is found from either one's frontier, and duplicates die
  // in the relation insert.
  std::unordered_set<PredRef, PredRefHash> touched;
  for (uint32_t ri : rules) {
    const Rule& rule = prog().rules[ri];
    if (inst_->internal(rule.head.pred_ref()) != nullptr) {
      touched.insert(rule.head.pred_ref());
    }
    for (const Literal& lit : rule.body) {
      if (inst_->internal(lit.pred_ref()) != nullptr) {
        touched.insert(lit.pred_ref());
      }
    }
  }
  std::unordered_map<PredRef, Mark, PredRefHash> start;
  for (const PredRef& p : touched) start[p] = m0_[p];
  while (true) {
    std::unordered_map<PredRef, std::vector<const Tuple*>, PredRefHash>
        front;
    for (const PredRef& p : touched) {
      Relation* rel = inst_->internal(p);
      std::unordered_set<const Tuple*> seen;
      std::unique_ptr<TupleIterator> it =
          rel->ScanRange(start[p], kMaxMark);
      while (const Tuple* t = it->Next()) {
        if (seen.insert(t).second) front[p].push_back(t);
      }
      start[p] = rel->Snapshot();  // round inserts land above this
    }
    if (front.empty()) break;
    ++inst_->stats_.iterations;
    for (uint32_t ri : rules) {
      const Rule& rule = prog().rules[ri];
      PredRef h = rule.head.pred_ref();
      if (inst_->internal(h) == nullptr) continue;
      for (size_t i = 0; i < rule.body.size(); ++i) {
        auto fit = front.find(rule.body[i].pred_ref());
        if (fit == front.end() || !IsStored(rule.body[i])) continue;
        CORAL_RETURN_IF_ERROR(EvalRule(
            rule, static_cast<int>(i), &fit->second, BodyState::kNew,
            BodyState::kNew, [&](const Tuple* t) {
              inst_->HeadInsert(h, t);
              return Status::OK();
            }));
      }
    }
  }

  // Phase 6: net per-predicate deltas for downstream SCCs. Everything
  // stored above m0 and not deleted is a net insertion; a deleted tuple
  // that never came back is a net deletion.
  for (const PredRef& p : plan.preds) {
    Relation* rel = inst_->internal(p);
    if (rel == nullptr) continue;
    PredDelta& pd = DeltaFor(p);
    const auto& dset = deleted_set[p];
    std::unordered_set<const Tuple*> seen;
    std::unique_ptr<TupleIterator> it = rel->ScanRange(m0_[p], kMaxMark);
    while (const Tuple* t = it->Next()) {
      if (!seen.insert(t).second) continue;
      if (dset.count(t) > 0) continue;  // deleted then rederived: no change
      pd.plus.push_back(t);
      pd.plus_set.insert(t);
    }
    for (const Tuple* t : deleted[p]) {
      if (!rel->Contains(t)) {
        pd.minus.push_back(t);
        pd.minus_set.insert(t);
      }
    }
    result_->derived_inserted += pd.plus.size();
    result_->derived_deleted += pd.minus.size();
  }
  return Status::OK();
}

Status MaintenancePass::Run(const UpdateDelta& delta) {
  // Import the base-relation deltas.
  for (const auto& [p, vec] : delta.minus) {
    PredDelta& d = DeltaFor(p);
    d.minus = vec;
    d.minus_set.insert(vec.begin(), vec.end());
  }
  for (const auto& [p, vec] : delta.plus) {
    PredDelta& d = DeltaFor(p);
    d.plus = vec;
    d.plus_set.insert(vec.begin(), vec.end());
  }

  // Snapshot every internal relation before any mutation: the resumed
  // fixpoint and the final-delta scans both anchor here.
  for (const auto& [p, rel] : inst_->internal_) {
    m0_[p] = rel->Snapshot();
  }

  EnsureProbeIndexes();

  // Support counts are built lazily, against the reconstructed pre-update
  // state, before the pass mutates anything. They persist across
  // successful passes; a new magic seed drops them (Seed()).
  if (!inst_->counts_valid_) {
    CORAL_RETURN_IF_ERROR(BuildCounts());
  }

  for (size_t s = 0; s < sccs().size(); ++s) {
    const SccPlan& plan = sccs()[s];
    if (!SccAffected(plan)) continue;
    if (SccIsRecursive(plan)) {
      CORAL_RETURN_IF_ERROR(ProcessRecursiveScc(s));
    } else {
      CORAL_RETURN_IF_ERROR(ProcessCountingScc(plan));
    }
  }
  return Status::OK();
}

bool MaterializedInstance::CanMaintain() const {
  if (!complete_ || in_step_) return false;
  if (prog_->ordered_search || decl_->explain) return false;
  if (decl_->fixpoint != FixpointKind::kBasicSemiNaive) return false;
  if (!decl_->agg_selections.empty()) return false;
  if (!decl_->multiset_preds.empty()) return false;
  for (const SccPlan& scc : prog_->seminaive.sccs) {
    for (const RuleVersion& v : scc.versions) {
      if (v.is_aggregate) return false;
    }
    for (const RuleVersion& v : scc.once) {
      if (v.is_aggregate) return false;
    }
  }
  for (const auto& [p, rel] : internal_) {
    if (rel->multiset() || !rel->selections().empty()) return false;
  }
  for (const Rule& r : prog_->rules) {
    for (const Literal& lit : r.body) {
      if (lit.negated) return false;
      PredRef p = lit.pred_ref();
      if (internal_.count(p) > 0) continue;
      const std::string& name = p.sym->name;
      if (db_->builtins()->Find(name, p.arity) != nullptr) {
        if (IsSideEffectingBuiltin(name)) return false;
        continue;
      }
      if (db_->modules()->Exports(p)) return false;
      if (!db_->modules()->LocalOwner(p).empty()) return false;
      Relation* base = db_->FindBaseRelation(p);
      if (base != nullptr) {
        if (base->multiset() || !base->selections().empty()) return false;
        if (dynamic_cast<MemoryRelation*>(base) == nullptr) return false;
      }
    }
  }
  return true;
}

Status MaterializedInstance::Maintain(const UpdateDelta& delta,
                                      UpdateResult* result) {
  CORAL_CHECK(complete_ && !in_step_);
  maintenance_mode_ = true;
  trace_ = db_->trace_sink();
  MaintenancePass pass(this, result);
  Status st = pass.Run(delta);
  maintenance_mode_ = false;
  if (!st.ok()) counts_valid_ = false;
  return st;
}

}  // namespace coral
