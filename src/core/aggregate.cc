#include "src/core/aggregate.h"

#include "src/core/builtins.h"
#include "src/util/hash.h"
#include "src/util/logging.h"

namespace coral {

AggHeadSpec AnalyzeAggHead(const Literal& head) {
  AggHeadSpec spec;
  for (const Arg* a : head.args) {
    AggArgSpec arg;
    arg.term = a;
    if (a->kind() == ArgKind::kAtomOrFunctor) {
      const auto* f = ArgCast<FunctorArg>(a);
      if (f->name() == kGroupMarker && f->arity() == 1) {
        arg.fn = AggFn::kSetOf;
        arg.var = f->arg(0);
      } else if (f->arity() == 1 &&
                 AggFnFromName(f->name()) != AggFn::kNone) {
        const Arg* inner = f->arg(0);
        if (inner->kind() == ArgKind::kAtomOrFunctor) {
          const auto* g = ArgCast<FunctorArg>(inner);
          if (g->name() == kGroupMarker && g->arity() == 1) {
            arg.fn = AggFnFromName(f->name());
            arg.var = g->arg(0);
          }
        }
      }
    }
    spec.is_aggregate |= arg.fn != AggFn::kNone;
    spec.args.push_back(arg);
  }
  return spec;
}

Status GroupAccumulator::Feed() {
  // Resolve group-by values (one renamer: consistent renaming of any
  // unbound variables across the key) and aggregate inputs.
  VarRenamer renamer;
  std::vector<const Arg*> key;
  std::vector<const Arg*> inputs(spec_->args.size(), nullptr);
  uint64_t h = 0x96093ull;
  for (size_t i = 0; i < spec_->args.size(); ++i) {
    const AggArgSpec& a = spec_->args[i];
    if (a.fn == AggFn::kNone) {
      const Arg* v = ResolveTerm(a.term, env_, factory_, &renamer);
      key.push_back(v);
      h = HashCombine(h, v->Hash());
    } else {
      inputs[i] = ResolveTerm(a.var, env_, factory_, &renamer);
    }
  }

  // Find or create the group.
  auto& bucket = groups_[h];
  Group* group = nullptr;
  for (Group& g : bucket) {
    if (g.key.size() == key.size()) {
      bool same = true;
      for (size_t i = 0; i < key.size() && same; ++i) {
        same = key[i] == g.key[i] || key[i]->Equals(*g.key[i]);
      }
      if (same) {
        group = &g;
        break;
      }
    }
  }
  if (group == nullptr) {
    bucket.push_back(Group{std::move(key), {}});
    group = &bucket.back();
    group->states.resize(spec_->args.size());
    group_order_.push_back(h);
  }

  for (size_t i = 0; i < spec_->args.size(); ++i) {
    const AggArgSpec& a = spec_->args[i];
    if (a.fn == AggFn::kNone) continue;
    AggState& st = group->states[i];
    const Arg* v = inputs[i];
    switch (a.fn) {
      case AggFn::kMin:
        if (st.best == nullptr || CompareArgs(v, st.best) < 0) st.best = v;
        break;
      case AggFn::kMax:
        if (st.best == nullptr || CompareArgs(v, st.best) > 0) st.best = v;
        break;
      case AggFn::kAny:
        if (st.best == nullptr) st.best = v;
        break;
      case AggFn::kCount:
        ++st.count;
        break;
      case AggFn::kSum:
      case AggFn::kAvg: {
        ++st.count;
        if (st.sum == nullptr) {
          st.sum = v;
        } else {
          const Arg* args[] = {st.sum, v};
          CORAL_ASSIGN_OR_RETURN(
              TermRef r,
              EvalArith(factory_->MakeFunctor("+", args), nullptr, factory_));
          if (r.term->kind() == ArgKind::kVariable) {
            return Status::InvalidArgument("sum over non-numeric values");
          }
          st.sum = r.term;
        }
        break;
      }
      case AggFn::kSetOf:
        st.collected.push_back(v);
        break;
      case AggFn::kNone:
        break;
    }
  }
  return Status::OK();
}

StatusOr<std::vector<const Tuple*>> GroupAccumulator::Finish() {
  std::vector<const Tuple*> out;
  // Emit groups in first-seen order; a hash may cover several groups, so
  // walk each bucket once when its hash first appears in the order.
  std::unordered_map<uint64_t, bool> emitted;
  for (uint64_t h : group_order_) {
    if (emitted[h]) continue;
    emitted[h] = true;
    for (Group& g : groups_[h]) {
      std::vector<const Arg*> args;
      size_t key_idx = 0;
      bool skip_group = false;
      for (size_t i = 0; i < spec_->args.size(); ++i) {
        const AggArgSpec& a = spec_->args[i];
        AggState& st = g.states[i];
        switch (a.fn) {
          case AggFn::kNone:
            args.push_back(g.key[key_idx++]);
            break;
          case AggFn::kMin:
          case AggFn::kMax:
          case AggFn::kAny:
            if (st.best == nullptr) {
              skip_group = true;
              break;
            }
            args.push_back(st.best);
            break;
          case AggFn::kCount:
            args.push_back(factory_->MakeInt(st.count));
            break;
          case AggFn::kSum:
            if (st.sum == nullptr) {
              skip_group = true;
              break;
            }
            args.push_back(st.sum);
            break;
          case AggFn::kAvg: {
            if (st.sum == nullptr || st.count == 0) {
              skip_group = true;
              break;
            }
            const Arg* divargs[] = {
                st.sum, factory_->MakeDouble(static_cast<double>(st.count))};
            CORAL_ASSIGN_OR_RETURN(
                TermRef r, EvalArith(factory_->MakeFunctor("/", divargs),
                                     nullptr, factory_));
            args.push_back(r.term);
            break;
          }
          case AggFn::kSetOf:
            args.push_back(factory_->MakeSet(st.collected));
            break;
        }
        if (skip_group) break;
      }
      if (!skip_group) out.push_back(factory_->MakeTuple(args));
    }
  }
  groups_.clear();
  group_order_.clear();
  return out;
}

}  // namespace coral
