#include "src/core/session.h"

#include <cctype>

#include "src/core/eval_context.h"
#include "src/lang/parser.h"
#include "src/rel/readview.h"

namespace coral {

Session::Session(Database* db, int64_t deadline_ms)
    : db_(db), deadline_ms_(deadline_ms) {
  db_->EnableConcurrentSessions();
}

Session::~Session() = default;

StatusOr<std::string> Session::Substitute(const std::string& text) const {
  if (text.find('$') == std::string::npos) return text;
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (c != '$') {
      out.push_back(c);
      ++i;
      continue;
    }
    size_t j = i + 1;
    while (j < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[j])) ||
            text[j] == '_')) {
      ++j;
    }
    if (j == i + 1) {  // bare '$': pass through (not a placeholder)
      out.push_back(c);
      ++i;
      continue;
    }
    std::string name = text.substr(i + 1, j - i - 1);
    auto it = bindings_.find(name);
    if (it == bindings_.end()) {
      return Status::InvalidArgument("unbound session placeholder $" + name);
    }
    out += it->second;
    i = j;
  }
  return out;
}

StatusOr<QueryResult> Session::EvalQuery(const std::string& text) {
  CORAL_ASSIGN_OR_RETURN(std::string query, Substitute(text));
  if (view_ == nullptr) view_ = db_->AcquireReadSnapshot();
  // The scoped view routes every base-relation scan in this thread to the
  // snapshot tables; the deadline is polled inside the join loop.
  ScopedReadView scope(view_.get());
  ScopedEvalDeadline deadline(deadline_ms_);
  return db_->EvalQuery(query);
}

StatusOr<std::vector<Query>> Session::Consult(std::string_view text) {
  auto result = db_->Consult(text);
  // Read-your-writes within a session: pick up the post-commit epoch on
  // the next query.
  Refresh();
  return result;
}

StatusOr<size_t> Session::LoadFacts(std::string_view text) {
  Parser parser(text, db_->factory());
  CORAL_ASSIGN_OR_RETURN(Program prog, parser.ParseProgram());
  if (!prog.queries.empty() || !prog.modules.empty() ||
      !prog.top_indexes.empty() || !prog.top_agg_selections.empty()) {
    return Status::InvalidArgument(
        "LoadFacts text must contain only facts; use Consult for "
        "programs");
  }
  size_t inserted = 0;
  for (const Rule& fact : prog.top_facts) {
    CORAL_ASSIGN_OR_RETURN(bool fresh, db_->InsertFact(fact));
    if (fresh) ++inserted;
  }
  Refresh();
  return inserted;
}

StatusOr<UpdateResult> Session::ApplyUpdate(std::string_view text) {
  UpdateBatch batch;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t nl = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, nl == std::string_view::npos ? std::string_view::npos
                                          : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    // Trim.
    size_t b = line.find_first_not_of(" \t\r");
    if (b == std::string_view::npos) continue;
    size_t e = line.find_last_not_of(" \t\r");
    line = line.substr(b, e - b + 1);
    if (line.empty() || line[0] == '%') continue;
    char op = line[0];
    if (op != '+' && op != '-') {
      return Status::InvalidArgument(
          "update line must start with '+' or '-': " + std::string(line));
    }
    std::string_view fact_text = line.substr(1);
    Parser parser(fact_text, db_->factory());
    CORAL_ASSIGN_OR_RETURN(Program prog, parser.ParseProgram());
    if (prog.top_facts.size() != 1 || !prog.queries.empty() ||
        !prog.modules.empty() || !prog.top_indexes.empty() ||
        !prog.top_agg_selections.empty()) {
      return Status::InvalidArgument("update line must be one fact: " +
                                     std::string(line));
    }
    if (op == '+') {
      batch.inserts.push_back(std::move(prog.top_facts[0]));
    } else {
      batch.deletes.push_back(std::move(prog.top_facts[0]));
    }
  }
  CORAL_ASSIGN_OR_RETURN(UpdateResult result, db_->ApplyUpdate(batch));
  Refresh();
  return result;
}

}  // namespace coral
