// Copyright (c) 1993-style CORAL reproduction authors.
// The Database facade: the single-user CORAL client (paper §2, Fig. 1).
// Owns the term factory, base relations (in-memory by default; persistent
// or computed relations can be registered), the builtin registry, and the
// module manager. 'Consulting' text loads facts, modules, annotations and
// queries — conversion into main-memory relations with any specified
// indices, exactly as §2 describes.

#ifndef CORAL_CORE_DATABASE_H_
#define CORAL_CORE_DATABASE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/diagnostics.h"
#include "src/core/builtins.h"
#include "src/core/module_manager.h"
#include "src/core/update.h"
#include "src/data/term_factory.h"
#include "src/lang/ast.h"
#include "src/obs/stats.h"
#include "src/obs/trace.h"
#include "src/obs/vm_stats.h"
#include "src/rel/readview.h"
#include "src/rel/relation.h"
#include "src/util/status.h"
#include "src/util/sync.h"
#include "src/util/thread_pool.h"

namespace coral {

/// One query answer: bindings of the query's named variables (anonymous
/// variables are omitted), plus whether the query succeeded at all (for
/// fully ground queries bindings are empty).
struct AnswerRow {
  std::vector<std::pair<std::string, const Arg*>> bindings;
  std::string ToString() const;
};

struct QueryResult {
  Query query;
  std::vector<AnswerRow> rows;
  std::string ToString() const;
};

/// Thread-safety contract (docs/API.md has the per-method table):
/// - Mutators — Consult / ConsultFile / InsertFact / DeleteFacts /
///   RegisterRelation / RegisterExternalRelation — are writer commits:
///   they serialize on the commit lock and may run while reader sessions
///   evaluate against their snapshots.
/// - Queries — ExecuteQuery / EvalQuery — are safe from many threads
///   concurrently with commits PROVIDED each calling thread evaluates
///   under a Session (which installs a ReadView snapshot and enables
///   concurrent term construction). Without a Session the old contract
///   stands: single-threaded use only.
/// - Configuration (set_num_threads, set_profiling, set_trace_sink, ...)
///   and teardown remain single-threaded administration.
class Database {
 public:
  Database();
  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  TermFactory* factory() { return factory_.get(); }
  BuiltinRegistry* builtins() { return &builtins_; }
  ModuleManager* modules() { return modules_.get(); }

  // ---- base relations ----
  /// Existing base relation or nullptr.
  Relation* FindBaseRelation(const PredRef& pred) const;
  /// Existing or freshly created (empty HashRelation).
  Relation* GetOrCreateBaseRelation(const PredRef& pred);
  /// Registers a custom Relation implementation (persistent relation,
  /// C++-computed relation, ...; paper §7.2 extensibility). The database
  /// takes ownership.
  Status RegisterRelation(const PredRef& pred,
                          std::unique_ptr<Relation> relation);
  /// Registers a relation owned elsewhere (e.g. by a StorageManager); the
  /// owner must outlive the database's use of it.
  Status RegisterExternalRelation(const PredRef& pred, Relation* relation);

  /// Inserts a fact (rule with empty body; may be non-ground) into its
  /// base relation. Returns true if the relation changed.
  StatusOr<bool> InsertFact(const Rule& fact);
  /// Deletes all stored facts subsumed by the given fact pattern;
  /// returns how many were removed.
  StatusOr<size_t> DeleteFacts(const Rule& fact);

  /// Commits one batch of base-fact mutations atomically — deletions
  /// first (patterns, subsumption-expanded like DeleteFacts), then
  /// insertions — and brings every affected saved module instance up to
  /// date: incrementally (counting / DRed, docs/MAINTENANCE.md) where the
  /// module's shape is covered, by invalidation otherwise. Either way, no
  /// later query can observe a stale answer. Returns what was done.
  StatusOr<UpdateResult> ApplyUpdate(const UpdateBatch& batch);

  /// Counters for the update path (updates committed, instances
  /// maintained vs. invalidated, derived-tuple churn).
  const obs::MaintenanceCounters& maintenance_counters() const {
    return maintenance_counters_;
  }

  /// When off, ApplyUpdate never maintains incrementally: every affected
  /// saved instance is invalidated and recomputed by its next query.
  /// Answers are identical either way — this is the from-scratch baseline
  /// for bench_update and a workaround switch should a maintenance bug
  /// ever need ruling out in the field.
  void set_maintenance(bool on) { maintenance_enabled_ = on; }
  bool maintenance_enabled() const { return maintenance_enabled_; }

  // ---- program loading ----
  /// Parses and applies `text`: facts, indices, aggregate selections and
  /// modules take effect; queries contained in the text are returned (not
  /// executed).
  StatusOr<std::vector<Query>> Consult(std::string_view text);
  /// Consults a file (paper §2: data in text files is 'consulted').
  StatusOr<std::vector<Query>> ConsultFile(const std::string& path);

  // ---- queries ----
  /// Evaluates a (possibly conjunctive) query against base relations,
  /// module exports and builtins.
  StatusOr<QueryResult> ExecuteQuery(const Query& query);
  /// Parses and executes a single query string like "?- path(1, X)."
  /// (the "?-" may be omitted).
  StatusOr<QueryResult> EvalQuery(const std::string& text);
  [[deprecated("renamed to EvalQuery")]] StatusOr<QueryResult> Query_(
      const std::string& text) {
    return EvalQuery(text);
  }

  /// Convenience for the interactive interface: consults `text`, executes
  /// any queries in it, and returns printable results.
  StatusOr<std::string> Run(std::string_view text);

  /// Explanation tool: derivation tree for a ground fact like
  /// "anc(a, c)", from the most recent evaluation of a module annotated
  /// with @explain.
  StatusOr<std::string> Explain(const std::string& fact_text);

  // ---- static analysis ----
  /// Diagnostics produced by the semantic analyzer for the modules of the
  /// most recent Consult / ConsultFile / Run. Errors refuse the offending
  /// module (Consult returns their text as a Status); warnings accumulate
  /// here for the caller to display.
  const DiagnosticList& last_diagnostics() const {
    return last_diagnostics_;
  }
  /// Warnings-as-errors: when on, any analyzer warning refuses the
  /// module, mirroring a compiler's -Werror.
  void set_strict(bool strict) { strict_ = strict; }
  bool strict() const { return strict_; }

  /// When set, every compiled query form's rewritten program is also
  /// stored as a text file `<dir>/<module>.<pred>.<adornment>.crl` —
  /// the paper's §2 debugging aid. Empty disables.
  void set_listing_dir(std::string dir) { listing_dir_ = std::move(dir); }
  const std::string& listing_dir() const { return listing_dir_; }

  // ---- automatic optimization (paper §4.2, §5.3) ----
  /// When on (the default), compiling a query form runs the abstract-
  /// interpretation analysis and applies its decisions: argument indexes
  /// are created up front for every join probe pattern, and rule bodies
  /// are reordered bound-args-first (cardinality breaking ties). Per
  /// module, @no_reorder_joins forces reordering off and @reorder_joins
  /// forces it on regardless of this switch. Off disables both passes:
  /// bodies evaluate as written and only @make_index indexes exist —
  /// the paper's unoptimized baseline (see bench --no-auto-index).
  /// Takes effect for forms compiled after the call (forms are cached).
  void set_auto_optimize(bool on) { auto_optimize_ = on; }
  bool auto_optimize() const { return auto_optimize_; }

  // ---- join bytecode VM (docs/VM.md) ----
  /// When on (the default), eligible rewritten rule versions run on the
  /// join bytecode VM; ineligible shapes (aggregates, negation, ordered
  /// search, cross-module literals, ...) and modules annotated @no_vm
  /// stay on the interpreting ResolveTuple path, which remains the
  /// semantic oracle. Takes effect at the next module activation — the
  /// compiled bytecode is cached with the query form either way.
  void set_use_vm(bool on) { use_vm_ = on; }
  bool use_vm() const { return use_vm_; }

  /// Database-wide per-opcode VM counters (see coral_prof --bytecode).
  obs::VmCounters* vm_counters() { return &vm_counters_; }
  const obs::VmCounters& vm_counters() const { return vm_counters_; }

  /// The optimizer plan (inferred modes, join order, index plan) of a
  /// compiled query form; compiles on demand. See also
  /// ModuleManager::PlanListing and coral_prof --plan.
  StatusOr<std::string> PlanListing(const std::string& module_name,
                                    const std::string& pred,
                                    const std::string& adornment);
  /// Concatenated plans of every form compiled so far, with headers.
  std::string PlanReport() const;
  /// Bytecode verifier verdicts for every export form of every module
  /// (compiling forms on demand): per-form verified/rejected/warning
  /// counts and the non-note findings. See docs/VM.md "Verification" and
  /// coral_prof --verify.
  std::string BytecodeVerifierReport();

  // ---- observability (paper §6, §8: profiling & tracing) ----
  /// Global profiling switch: when on, every materialized or pipelined
  /// module activation records per-rule and per-iteration statistics in
  /// stats(). Modules annotated @profile record regardless of this
  /// switch. Off (the default) costs one branch per hook site.
  void set_profiling(bool on) { profiling_ = on; }
  bool profiling() const { return profiling_; }

  /// Recorded statistics, keyed by module name, aggregated across
  /// activations until ClearStats().
  obs::StatsRegistry* stats() { return &stats_; }
  const obs::StatsRegistry& stats() const { return stats_; }
  void ClearStats() { stats_.Clear(); }

  /// Pretty-printed report over all recorded statistics.
  std::string ProfileReport() const;

  /// Structured trace events (iteration begin/end, rule fire, insert,
  /// module call) are emitted to `sink` while set; nullptr disables.
  /// The sink is unowned and is called from serial engine code only.
  void set_trace_sink(obs::TraceSink* sink) { trace_sink_ = sink; }
  obs::TraceSink* trace_sink() const { return trace_sink_; }

  // ---- parallel evaluation ----
  /// Default worker count for the parallel semi-naive fixpoint. Modules
  /// annotated @parallel(N) override it; modules without @parallel also
  /// use it, so embedding code can parallelize any eligible materialized
  /// module without touching CRL text. 1 (the default) is the sequential
  /// engine, byte-for-byte. Values are clamped to [1, kMaxParallelThreads].
  void set_num_threads(int n);
  int num_threads() const { return num_threads_; }
  /// The shared worker pool, created on first use with at least `threads`
  /// workers (grown by recreation if a later caller needs more).
  ThreadPool* thread_pool(size_t threads);

  // ---- concurrent sessions (docs/SERVER.md) ----
  /// The current committed snapshot: publishes any relation state changed
  /// since the last acquisition (bumping the epoch) and returns the view.
  /// Cheap when nothing committed in between — a shared-lock read of the
  /// cached view. The view (and every table it references) stays valid
  /// for the life of the database.
  std::shared_ptr<const ReadView> AcquireReadSnapshot();

  /// Epoch of the most recent publication (0 before the first).
  uint64_t snapshot_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Declares that multiple Session threads will use this database:
  /// permanently enables concurrent term construction and symbol
  /// interning. Sticky — set_num_threads can no longer drop the locks.
  /// Called automatically by Session; safe to call at any time.
  void EnableConcurrentSessions();

  /// The commit lock. Writer commits and module-activation structural
  /// setup (MaterializedInstance::Init) hold it exclusively; snapshot
  /// acquisition holds it briefly shared.
  SharedMutex* commit_mutex() CORAL_RETURN_CAPABILITY(commit_mu_) {
    return &commit_mu_;
  }

 private:
  Status ApplyIndexDecl(const IndexDecl& decl) CORAL_REQUIRES(commit_mu_);
  Status ApplyAggSelDecl(const AggSelDecl& decl) CORAL_REQUIRES(commit_mu_);
  StatusOr<std::vector<Query>> ConsultLocked(std::string_view text)
      CORAL_REQUIRES(commit_mu_);
  StatusOr<bool> InsertFactLocked(const Rule& fact)
      CORAL_REQUIRES(commit_mu_);
  /// Publishes dirty shared relations at a new epoch and rebuilds the
  /// cached view.
  void PublishLocked() CORAL_REQUIRES(commit_mu_);

  std::unique_ptr<TermFactory> factory_;
  BuiltinRegistry builtins_;
  std::unique_ptr<ModuleManager> modules_;

  /// Writer commits hold this exclusively; AcquireReadSnapshot holds it
  /// shared (or exclusively, when publication is due). Reader sessions do
  /// NOT hold it while evaluating — isolation comes from the ReadView.
  mutable SharedMutex commit_mu_{kRankCommitLock};
  /// Guards the base-relation map itself (lookups happen on reader
  /// threads while commits create relations).
  mutable Mutex base_mu_{kRankBaseMap};
  std::unordered_map<PredRef, Relation*, PredRefHash> base_
      CORAL_GUARDED_BY(base_mu_);
  std::vector<std::unique_ptr<Relation>> owned_relations_
      CORAL_GUARDED_BY(base_mu_);
  std::atomic<uint64_t> epoch_{0};
  /// True when live state may differ from the published view; set by
  /// every commit, cleared by PublishLocked. Written under the exclusive
  /// commit lock, read under at least the shared lock.
  std::atomic<bool> snapshot_stale_{true};
  std::shared_ptr<const ReadView> view_ CORAL_GUARDED_BY(commit_mu_);
  std::atomic<bool> concurrent_sessions_{false};
  std::string listing_dir_;
  DiagnosticList last_diagnostics_;
  bool strict_ = false;
  bool auto_optimize_ = true;
  bool use_vm_ = true;
  bool maintenance_enabled_ = true;
  obs::VmCounters vm_counters_;
  int num_threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;
  bool profiling_ = false;
  obs::StatsRegistry stats_;
  obs::MaintenanceCounters maintenance_counters_;
  obs::TraceSink* trace_sink_ = nullptr;
};

}  // namespace coral

#endif  // CORAL_CORE_DATABASE_H_
