// Copyright (c) 1993-style CORAL reproduction authors.
// Set-grouping and aggregate operations in rule heads (paper §1, §5.4.1,
// Fig. 3): heads like s(X, min(<C>)) or children(X, <Y>) group body
// solutions by the non-aggregated head arguments and fold the grouped
// variable with min/max/sum/count/avg/any, or collect it into a set term.

#ifndef CORAL_CORE_AGGREGATE_H_
#define CORAL_CORE_AGGREGATE_H_

#include <unordered_map>
#include <vector>

#include "src/data/unify.h"
#include "src/lang/ast.h"
#include "src/util/status.h"

namespace coral {

/// Per-head-argument aggregation role.
struct AggArgSpec {
  AggFn fn = AggFn::kNone;     // kNone: plain group-by argument
  const Arg* term = nullptr;   // the original head argument term
  const Arg* var = nullptr;    // grouped variable (aggregate args only)
};

/// Analysis of a rule head's aggregation structure.
struct AggHeadSpec {
  bool is_aggregate = false;
  std::vector<AggArgSpec> args;
};

/// Recognizes min(<C>), sum(<X>), bare <X> (set-of), etc.
AggHeadSpec AnalyzeAggHead(const Literal& head);

/// Accumulates body solutions and emits one tuple per group.
class GroupAccumulator {
 public:
  GroupAccumulator(const AggHeadSpec* spec, BindEnv* env,
                   TermFactory* factory)
      : spec_(spec), env_(env), factory_(factory) {}

  /// Records the current solution (bindings live in the env the spec's
  /// terms are scoped by).
  Status Feed();

  /// Builds the grouped head tuples. The accumulator is spent afterwards.
  StatusOr<std::vector<const Tuple*>> Finish();

 private:
  struct AggState {
    const Arg* best = nullptr;     // min / max / any
    const Arg* sum = nullptr;      // running sum (as a term)
    int64_t count = 0;
    std::vector<const Arg*> collected;  // set-of
  };
  struct Group {
    std::vector<const Arg*> key;   // resolved group-by values (positional)
    std::vector<AggState> states;  // one per aggregate position
  };

  const AggHeadSpec* spec_;
  BindEnv* env_;
  TermFactory* factory_;
  std::unordered_map<uint64_t, std::vector<Group>> groups_;
  std::vector<uint64_t> group_order_;  // hashes in first-seen order
};

}  // namespace coral

#endif  // CORAL_CORE_AGGREGATE_H_
