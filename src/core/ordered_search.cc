#include "src/core/ordered_search.h"

#include "src/core/database.h"
#include "src/util/logging.h"

namespace coral {

namespace {

bool VariantTuples(const Tuple* a, const Tuple* b) {
  if (a == b) return true;
  if (a->IsGround() || b->IsGround()) return false;  // interned if equal
  return SubsumesTuple(a, b) && SubsumesTuple(b, a);
}

}  // namespace

int OrderedSearchEval::FindOnStack(const PredRef& pred,
                                   const Tuple* goal) const {
  if (goal->IsGround()) {
    auto it = ground_depth_.find(goal);
    if (it == ground_depth_.end()) return -1;
    // Distinct magic predicates could stage equal tuples; verify.
    for (const GoalEntry& g : stack_[it->second].goals) {
      if (g.magic_pred == pred && g.goal == goal) {
        return static_cast<int>(it->second);
      }
    }
    return -1;
  }
  for (size_t d = 0; d < stack_.size(); ++d) {
    for (const GoalEntry& g : stack_[d].goals) {
      if (g.magic_pred == pred && VariantTuples(g.goal, goal)) {
        return static_cast<int>(d);
      }
    }
  }
  return -1;
}

void OrderedSearchEval::Collapse(size_t depth) {
  CORAL_CHECK(depth < stack_.size());
  if (inst_->profile_ != nullptr) {
    inst_->profile_->os_collapses.fetch_add(1, std::memory_order_relaxed);
  }
  Node merged = std::move(stack_[depth]);
  for (size_t d = depth + 1; d < stack_.size(); ++d) {
    for (GoalEntry& g : stack_[d].goals) {
      if (g.goal->IsGround()) ground_depth_[g.goal] = depth;
      merged.goals.push_back(g);
    }
  }
  stack_.resize(depth);
  stack_.push_back(std::move(merged));
}

bool OrderedSearchEval::ReleaseOne() {
  if (stack_.empty()) return false;
  Node& top = stack_.back();
  for (GoalEntry& g : top.goals) {
    if (g.released) continue;
    Relation* magic = inst_->internal(g.magic_pred);
    CORAL_CHECK(magic != nullptr);
    magic->Insert(g.goal);
    g.released = true;
    if (inst_->profile_ != nullptr) {
      inst_->profile_->os_subgoals_released.fetch_add(
          1, std::memory_order_relaxed);
    }
    return true;
  }
  return false;
}

Status OrderedSearchEval::Drain(bool* changed) {
  *changed = false;
  for (auto& [magic_pred, stage] : inst_->staging_) {
    Mark from = 0;
    auto it = drain_marks_.find(magic_pred);
    if (it != drain_marks_.end()) from = it->second;
    Mark to = stage->Snapshot();
    drain_marks_[magic_pred] = to;
    if (from >= to) continue;
    std::unique_ptr<TupleIterator> scan = stage->ScanRange(from, to);
    while (const Tuple* goal = scan->Next()) {
      // Already completed? (done facts subsume later regenerations)
      auto dit = inst_->prog_->done_of.find(magic_pred);
      if (dit != inst_->prog_->done_of.end()) {
        Relation* done = inst_->internal(dit->second);
        if (done != nullptr && done->Contains(goal)) continue;
      }
      int depth = FindOnStack(magic_pred, goal);
      if (depth >= 0) {
        // Regeneration of a live subgoal: mutual dependency. Collapse so
        // the whole cycle completes together (paper §5.4.1 / [23]).
        if (static_cast<size_t>(depth) + 1 < stack_.size()) {
          Collapse(static_cast<size_t>(depth));
          *changed = true;
        }
        continue;
      }
      // A goal released in an earlier (popped but not done-guarded)
      // node? Released goals live in the magic relation.
      Relation* magic = inst_->internal(magic_pred);
      if (magic != nullptr && magic->Contains(goal)) continue;
      if (goal->IsGround()) ground_depth_[goal] = stack_.size();
      stack_.push_back(Node{{GoalEntry{goal, magic_pred, false}}});
      *changed = true;
    }
  }
  return Status::OK();
}

Status OrderedSearchEval::Run() {
  // Seed goals become the initial context nodes (oldest deepest).
  for (const Tuple* seed : inst_->pending_seeds_) {
    if (FindOnStack(inst_->prog_->seed_pred, seed) < 0) {
      if (seed->IsGround()) ground_depth_[seed] = stack_.size();
      stack_.push_back(
          Node{{GoalEntry{seed, inst_->prog_->seed_pred, false}}});
    }
  }
  inst_->pending_seeds_.clear();

  while (!stack_.empty()) {
    // Make one subgoal of the top node available and evaluate.
    bool released = ReleaseOne();
    bool pass_changed = true;
    while (pass_changed) {
      CORAL_RETURN_IF_ERROR(inst_->RunGlobalPass(&pass_changed));
      bool stack_changed = false;
      CORAL_RETURN_IF_ERROR(Drain(&stack_changed));
      pass_changed |= stack_changed;
      if (stack_changed) {
        // New or collapsed subgoals: release from the (new) top first.
        released = ReleaseOne() || released;
      }
    }
    if (!stack_.empty() && stack_.back().AllReleased()) {
      // Top node completely evaluated: mark all its subgoals done. The
      // done deltas re-enable guarded rules on the next pass.
      Node node = std::move(stack_.back());
      stack_.pop_back();
      for (const GoalEntry& g : node.goals) {
        if (g.goal->IsGround()) ground_depth_.erase(g.goal);
      }
      for (const GoalEntry& g : node.goals) {
        auto dit = inst_->prog_->done_of.find(g.magic_pred);
        if (dit == inst_->prog_->done_of.end()) continue;
        Relation* done = inst_->internal(dit->second);
        CORAL_CHECK(done != nullptr);
        done->Insert(g.goal);
      }
      // Run the guarded rules now enabled.
      bool changed = true;
      while (changed) {
        CORAL_RETURN_IF_ERROR(inst_->RunGlobalPass(&changed));
        bool stack_changed = false;
        CORAL_RETURN_IF_ERROR(Drain(&stack_changed));
        changed |= stack_changed;
      }
    } else if (!released && !stack_.empty() &&
               !stack_.back().AllReleased()) {
      return Status::Internal("ordered search made no progress");
    }
  }
  return Status::OK();
}

}  // namespace coral
