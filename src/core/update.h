// Copyright (c) 1993-style CORAL reproduction authors.
// Incremental update types (docs/MAINTENANCE.md): one ApplyUpdate commit
// is described to the view-maintenance machinery as per-predicate lists
// of base tuples actually inserted and deleted. The lists are exact (net
// of in-batch cancellation and duplicate/subsumption checks), which is
// what lets the counting algorithm treat them as derivation deltas.

#ifndef CORAL_CORE_UPDATE_H_
#define CORAL_CORE_UPDATE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/lang/ast.h"

namespace coral {

class Tuple;

/// One batch of base-fact mutations, applied atomically under the commit
/// lock: deletions first (patterns, subsumption-expanded like
/// DeleteFacts), then insertions.
struct UpdateBatch {
  std::vector<Rule> inserts;  // facts (rules with empty bodies)
  std::vector<Rule> deletes;  // fact patterns; may contain variables
};

/// The net base-relation delta of one committed batch. A tuple appears in
/// `plus[p]` only if Insert actually changed relation p, and in
/// `minus[p]` only if it was stored and removed; a tuple both deleted and
/// re-inserted by the same batch appears in neither.
struct UpdateDelta {
  std::unordered_map<PredRef, std::vector<const Tuple*>, PredRefHash> plus;
  std::unordered_map<PredRef, std::vector<const Tuple*>, PredRefHash> minus;
  /// False when any delta tuple is non-ground; maintenance then falls
  /// back to invalidation (counting keys tuples by interned pointer,
  /// which only ground tuples guarantee).
  bool ground_only = true;

  bool empty() const { return plus.empty() && minus.empty(); }
};

/// What happened to one committed update batch.
struct UpdateResult {
  size_t base_inserted = 0;  // base tuples actually added
  size_t base_deleted = 0;   // base tuples actually removed
  /// Saved module instances brought up to date incrementally.
  size_t maintained = 0;
  /// Saved module instances dropped (recomputed on next query).
  size_t invalidated = 0;
  // Derived-relation work done by maintenance passes.
  uint64_t derived_inserted = 0;
  uint64_t derived_deleted = 0;
  uint64_t rederived = 0;  // DRed candidates that survived rederivation
};

}  // namespace coral

#endif  // CORAL_CORE_UPDATE_H_
