// Copyright (c) 1993-style CORAL reproduction authors.
// The module system (paper §2, §5, §5.6): modules export predicates with
// query forms; a query on an exported predicate sets up a call on the
// module, which presents a scan-like get-next-tuple interface returning
// all answers to the subquery — independent of whether the callee is
// pipelined or materialized, lazy or eager, saved or transient.

#ifndef CORAL_CORE_MODULE_MANAGER_H_
#define CORAL_CORE_MODULE_MANAGER_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/analysis/diagnostics.h"
#include "src/core/module_eval.h"
#include "src/core/pipeline.h"

namespace coral {

class Database;

class ModuleManager {
 public:
  explicit ModuleManager(Database* db) : db_(db) {}

  /// Analyzes and registers a module; its exports become visible to all
  /// other modules and to queries. Re-adding a module with the same name
  /// replaces it. The semantic analyzer runs first: diagnostics go to
  /// `diags` when non-null, and the module is refused (leaving any
  /// previous version in place) on errors — or on warnings too when the
  /// database is in strict mode.
  Status AddModule(ModuleDecl decl, DiagnosticList* diags = nullptr);

  /// True if some module exports `pred`.
  bool Exports(const PredRef& pred) const;

  /// Name of the module defining `pred` locally (without exporting it);
  /// empty string when no module claims it. Only exported predicates are
  /// visible outside their module (paper §5).
  const std::string& LocalOwner(const PredRef& pred) const;

  /// Opens an inter-module (or top-level) call: selects the best matching
  /// query form for the binding pattern of `args`, compiles it on first
  /// use, and returns the answer scan (paper §5.6).
  StatusOr<std::unique_ptr<TupleIterator>> OpenQuery(
      const PredRef& pred, std::span<const TermRef> args);

  /// The rewritten-program listing for (module, form); compiles on demand.
  /// Useful for debugging, mirroring the paper's text-file dump.
  StatusOr<std::string> RewrittenListing(const std::string& module_name,
                                         const std::string& pred,
                                         const std::string& adornment);

  /// The optimizer plan for (module, form): inferred modes (groundness,
  /// types, cardinality), the join-order decision, and the planned
  /// argument indexes. Compiles on demand, like RewrittenListing.
  StatusOr<std::string> PlanListing(const std::string& module_name,
                                    const std::string& pred,
                                    const std::string& adornment);

  /// Plans of every form compiled so far, each under a
  /// "plan for module <m>, query form <p>(<adornment>)" header; empty
  /// string when nothing has been compiled.
  std::string PlanReport() const;

  /// Evaluation statistics of the most recent materialized activation
  /// (save-module instances aggregate across calls).
  const EvalStats& last_stats() const;

  /// Explanation tool: derivation tree of a fact derived by the most
  /// recent materialized activation of a module with @explain. `fact` is
  /// matched against recorded heads (answers and intermediates).
  StatusOr<std::string> ExplainLast(const Tuple* fact) const;

  const std::vector<std::string>& module_names() const { return names_; }

 private:
  struct CompiledForm {
    std::unique_ptr<RewrittenProgram> prog;
    /// Join bytecode for the rule versions of `prog` (null entries stay
    /// interpreted); compiled alongside the form, bound per activation.
    std::unique_ptr<vm::ModuleProgram> vm;
    std::shared_ptr<MaterializedInstance> saved;  // save-module only
  };
  struct ModuleEntry {
    ModuleDecl decl;
    // key: "pred/arity@adornment"
    std::map<std::string, CompiledForm> forms;
    std::unique_ptr<PipelinedModule> pipelined;
  };

  StatusOr<CompiledForm*> CompileForm(ModuleEntry* entry,
                                      const QueryFormDecl& form);
  const QueryFormDecl* SelectForm(const ModuleEntry& entry,
                                  const PredRef& pred,
                                  std::span<const TermRef> args) const;

  Database* db_;
  std::vector<std::unique_ptr<ModuleEntry>> modules_;
  std::vector<std::string> names_;
  std::unordered_map<PredRef, ModuleEntry*, PredRefHash> export_index_;
  std::unordered_map<PredRef, std::string, PredRefHash> local_index_;
  int call_depth_ = 0;
  std::shared_ptr<MaterializedInstance> last_instance_;
};

}  // namespace coral

#endif  // CORAL_CORE_MODULE_MANAGER_H_
