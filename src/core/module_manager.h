// Copyright (c) 1993-style CORAL reproduction authors.
// The module system (paper §2, §5, §5.6): modules export predicates with
// query forms; a query on an exported predicate sets up a call on the
// module, which presents a scan-like get-next-tuple interface returning
// all answers to the subquery — independent of whether the callee is
// pipelined or materialized, lazy or eager, saved or transient.

#ifndef CORAL_CORE_MODULE_MANAGER_H_
#define CORAL_CORE_MODULE_MANAGER_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/analysis/diagnostics.h"
#include "src/core/module_eval.h"
#include "src/core/pipeline.h"
#include "src/util/sync.h"
#include "src/vm/verifier.h"

namespace coral {

class Database;

/// Thread-safety: registration and the form cache are guarded by mu_
/// (rank kRankModuleManager). OpenQuery is safe from concurrent reader
/// sessions; instance Init/Seed/Run happen OUTSIDE mu_ (Init acquires the
/// database commit lock, which ranks below mu_). Module declarations and
/// compiled forms are immutable once created, and entries replaced by
/// re-consulting a module are retired (not destroyed), so in-flight
/// queries finish against the version they started with.
class ModuleManager {
 public:
  explicit ModuleManager(Database* db) : db_(db) {}

  /// Analyzes and registers a module; its exports become visible to all
  /// other modules and to queries. Re-adding a module with the same name
  /// replaces it. The semantic analyzer runs first: diagnostics go to
  /// `diags` when non-null, and the module is refused (leaving any
  /// previous version in place) on errors — or on warnings too when the
  /// database is in strict mode.
  Status AddModule(ModuleDecl decl, DiagnosticList* diags = nullptr);

  /// True if some module exports `pred`.
  bool Exports(const PredRef& pred) const;

  /// Name of the module defining `pred` locally (without exporting it);
  /// empty string when no module claims it. Only exported predicates are
  /// visible outside their module (paper §5). By value: the entry can be
  /// retired by a concurrent module replacement.
  std::string LocalOwner(const PredRef& pred) const;

  /// Opens an inter-module (or top-level) call: selects the best matching
  /// query form for the binding pattern of `args`, compiles it on first
  /// use, and returns the answer scan (paper §5.6).
  StatusOr<std::unique_ptr<TupleIterator>> OpenQuery(
      const PredRef& pred, std::span<const TermRef> args);

  /// The rewritten-program listing for (module, form); compiles on demand.
  /// Useful for debugging, mirroring the paper's text-file dump.
  StatusOr<std::string> RewrittenListing(const std::string& module_name,
                                         const std::string& pred,
                                         const std::string& adornment);

  /// The optimizer plan for (module, form): inferred modes (groundness,
  /// types, cardinality), the join-order decision, and the planned
  /// argument indexes. Compiles on demand, like RewrittenListing.
  StatusOr<std::string> PlanListing(const std::string& module_name,
                                    const std::string& pred,
                                    const std::string& adornment);

  /// Plans of every form compiled so far, each under a
  /// "plan for module <m>, query form <p>(<adornment>)" header; empty
  /// string when nothing has been compiled.
  std::string PlanReport() const;

  /// Evaluation statistics of the most recent materialized activation
  /// (save-module instances aggregate across calls). Returned by value:
  /// a debugging aid, racy by nature under concurrent sessions.
  EvalStats last_stats() const;

  /// Explanation tool: derivation tree of a fact derived by the most
  /// recent materialized activation of a module with @explain. `fact` is
  /// matched against recorded heads (answers and intermediates).
  StatusOr<std::string> ExplainLast(const Tuple* fact) const;

  std::vector<std::string> module_names() const {
    MutexLock lock(&mu_);
    return names_;
  }

  /// Drops the saved instance of every compiled form that (transitively
  /// within the module) reads base predicate `pred` — or that calls into
  /// another module, where dependencies are not tracked. Called by the
  /// database on any base-fact mutation that bypasses ApplyUpdate
  /// (InsertFact, DeleteFacts, Consult, assert/retract, relation
  /// registration): stale answers are never served; the next query
  /// recomputes.
  void InvalidateDependents(const PredRef& pred);

  /// Bytecode verifier outcome of one compiled query form (docs/VM.md
  /// "Verification"): the whole-module audit plus the compile counters,
  /// or `error` when the form does not compile at all.
  struct FormBytecodeAudit {
    std::string module;
    std::string pred;        // "p/2"
    std::string adornment;   // "" when the form has none
    vm::ModuleAudit audit;
    uint64_t compiled = 0;
    uint64_t skipped = 0;
    /// Non-empty: the whole form runs interpreted for this (legitimate)
    /// reason — pipelined evaluation, @no_vm, ordered search.
    std::string fallback_reason;
    std::string error;       // non-empty: rewrite/compile failure
  };

  /// Compiles (on demand) every export form of every registered module
  /// and returns each form's verifier audit, in registration order.
  /// Pipelined modules are reported with an explanatory
  /// `fallback_reason`. Used by coral_bcverify and
  /// Database::BytecodeVerifierReport.
  std::vector<FormBytecodeAudit> AuditAllBytecode();

  /// Applies one committed base-relation delta to every affected saved
  /// instance: incrementally (CanMaintain + Maintain) where the shape is
  /// covered, by dropping the instance otherwise. Counts land in
  /// `result`. The caller holds the database commit lock, serializing
  /// writers; mu_ is only taken to collect and to record outcomes, never
  /// across a maintenance pass (Maintain resolves exports/base relations,
  /// which take locks ranking around mu_).
  void PropagateUpdate(const UpdateDelta& delta, UpdateResult* result);

 private:
  struct CompiledForm {
    std::unique_ptr<RewrittenProgram> prog;
    /// Join bytecode for the rule versions of `prog` (null entries stay
    /// interpreted); compiled alongside the form, bound per activation.
    std::unique_ptr<vm::ModuleProgram> vm;
    /// Whole-plan verifier audit of `vm` (null when nothing compiled);
    /// audit-rejected programs are nulled out of `vm` before caching.
    std::unique_ptr<vm::ModuleAudit> audit;
    std::shared_ptr<MaterializedInstance> saved;  // save-module only
    /// Base predicates the form's rewritten rules read (body predicates
    /// that are neither rule heads nor builtins); computed at compile
    /// time for update routing.
    std::unordered_set<PredRef, PredRefHash> base_deps;
    /// True when some body literal calls another module: its answers can
    /// change for reasons dependency tracking does not see, so any update
    /// invalidates the saved instance.
    bool external_module_deps = false;
  };
  struct ModuleEntry {
    ModuleDecl decl;
    // key: "pred/arity@adornment"
    std::map<std::string, CompiledForm> forms;
    std::unique_ptr<PipelinedModule> pipelined;
  };

  StatusOr<CompiledForm*> CompileFormLocked(ModuleEntry* entry,
                                            const QueryFormDecl& form)
      CORAL_REQUIRES(mu_);
  const QueryFormDecl* SelectForm(const ModuleEntry& entry,
                                  const PredRef& pred,
                                  std::span<const TermRef> args) const;
  /// Unlocked membership checks for the bytecode compiler's callbacks,
  /// which run while CompileFormLocked holds mu_ but cross a
  /// std::function boundary the analysis cannot follow.
  bool ExportsUnlocked(const PredRef& pred) const
      CORAL_TS_UNSAFE("only called from compile callbacks invoked under "
                      "mu_ by CompileFormLocked");
  bool HasLocalOwnerUnlocked(const PredRef& pred) const
      CORAL_TS_UNSAFE("only called from compile callbacks invoked under "
                      "mu_ by CompileFormLocked");

  Database* db_;
  mutable Mutex mu_{kRankModuleManager};
  std::vector<std::unique_ptr<ModuleEntry>> modules_ CORAL_GUARDED_BY(mu_);
  /// Entries displaced by re-adding a module with the same name. Retired,
  /// never destroyed: scans opened against the old version (and compiled
  /// forms pointing into its decl) stay valid for the database's life.
  std::vector<std::unique_ptr<ModuleEntry>> retired_ CORAL_GUARDED_BY(mu_);
  std::vector<std::string> names_ CORAL_GUARDED_BY(mu_);
  std::unordered_map<PredRef, ModuleEntry*, PredRefHash> export_index_
      CORAL_GUARDED_BY(mu_);
  std::unordered_map<PredRef, std::string, PredRefHash> local_index_
      CORAL_GUARDED_BY(mu_);
  std::shared_ptr<MaterializedInstance> last_instance_
      CORAL_GUARDED_BY(mu_);
};

}  // namespace coral

#endif  // CORAL_CORE_MODULE_MANAGER_H_
