// Copyright (c) 1993-style CORAL reproduction authors.
// Ordered Search (paper §5.4.1, citing [23]): orders the use of generated
// subgoals for left-to-right modularly stratified programs with negation,
// set-grouping and aggregation. A *context* stack stores subgoals (magic
// facts) in an ordered fashion and decides which subgoal to make available
// next; magic facts derived during evaluation are intercepted (staged)
// instead of becoming visible. When a subgoal — and everything generated
// after it — is completely evaluated, its node is popped and a fact is
// added to the corresponding 'done' predicate, enabling the guarded rules
// (negation reduced to set-difference; aggregation applied per completed
// subgoal). Mutually dependent subgoals (a regeneration of a subgoal
// already on the stack) collapse into a single node and complete together.

#ifndef CORAL_CORE_ORDERED_SEARCH_H_
#define CORAL_CORE_ORDERED_SEARCH_H_

#include <vector>

#include "src/core/module_eval.h"

namespace coral {

class OrderedSearchEval {
 public:
  explicit OrderedSearchEval(MaterializedInstance* inst) : inst_(inst) {}

  /// Consumes the instance's pending seed goals and runs to completion.
  Status Run();

 private:
  struct GoalEntry {
    const Tuple* goal;
    PredRef magic_pred;
    bool released = false;
  };
  struct Node {
    std::vector<GoalEntry> goals;
    bool AllReleased() const {
      for (const GoalEntry& g : goals) {
        if (!g.released) return false;
      }
      return true;
    }
  };

  /// Moves one unreleased goal of the top node into its magic relation.
  bool ReleaseOne();

  /// Drains newly staged magic facts: pushes fresh subgoals as new nodes;
  /// collapses when a stack goal is regenerated. Returns true if the
  /// stack changed.
  Status Drain(bool* changed);

  /// Index of the stack node holding a variant of (pred, goal); -1 none.
  int FindOnStack(const PredRef& pred, const Tuple* goal) const;

  /// Merges nodes depth..top into one node at `depth`.
  void Collapse(size_t depth);

  MaterializedInstance* inst_;
  std::vector<Node> stack_;
  std::unordered_map<PredRef, Mark, PredRefHash> drain_marks_;
  // Ground goals are canonical tuples: O(1) stack-depth lookups. Only
  // non-ground goals (rare) need the variant scan.
  std::unordered_map<const Tuple*, size_t> ground_depth_;
};

}  // namespace coral

#endif  // CORAL_CORE_ORDERED_SEARCH_H_
