// Fixpoint iteration engine of MaterializedInstance: Basic Semi-Naive,
// Predicate Semi-Naive and Naive drivers over the compiled SCC plans
// (paper §4.2, §5.3).

#include <chrono>
#include <set>
#include <unordered_set>

#include "src/core/database.h"
#include "src/core/eval_context.h"
#include "src/core/module_eval.h"
#include "src/rel/readview.h"
#include "src/rewrite/existential.h"
#include "src/util/logging.h"

namespace coral {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Folds one rule application's plain opcode counts into the Database-wide
// atomic counters — one flush per application keeps atomics off the
// per-tuple path. Relaxed order: these are statistics, read at quiescent
// points (coral_prof --bytecode).
void FlushVmOps(obs::VmCounters* c, const vm::OpCounts& o) {
  auto add = [](std::atomic<uint64_t>& a, uint64_t n) {
    if (n != 0) a.fetch_add(n, std::memory_order_relaxed);
  };
  add(c->scan_full, o.scan_full);
  add(c->scan_delta, o.scan_delta);
  add(c->probe_index, o.probe_index);
  add(c->probe_scan_fallbacks, o.probe_scan_fallbacks);
  add(c->unify_arg, o.unify_arg);
  add(c->test_builtin, o.test_builtin);
  add(c->project, o.project);
  add(c->insert, o.insert);
}

}  // namespace

std::pair<Mark, Mark> MaterializedInstance::WindowFor(
    size_t scc_idx, const PredRef& pred, RangeSel sel,
    const std::unordered_map<PredRef, Mark, PredRefHash>* cur) {
  Relation* rel = internal(pred);
  if (rel == nullptr) return {0, kMaxMark};  // external: full extension
  Mark prev = 0;
  auto pit = prev_marks_[scc_idx].find(pred);
  if (pit != prev_marks_[scc_idx].end()) prev = pit->second;
  Mark cur_mark = kMaxMark;
  if (cur != nullptr) {
    auto cit = cur->find(pred);
    if (cit != cur->end()) cur_mark = cit->second;
  }
  switch (sel) {
    case RangeSel::kFull:
      return {0, cur_mark};
    case RangeSel::kOld:
      return {0, prev};
    case RangeSel::kDelta:
      return {prev, cur_mark};
  }
  CORAL_UNREACHABLE();
}

StatusOr<std::unique_ptr<GoalSource>> MaterializedInstance::MakeSource(
    const Literal* lit, BindEnv* env, Mark from, Mark to,
    PartitionSpec part) {
  PredRef pred = lit->pred_ref();
  if (Relation* rel = internal(pred)) {
    if (lit->negated) {
      return std::unique_ptr<GoalSource>(
          new NegationGoalSource(lit, env, rel));
    }
    return std::unique_ptr<GoalSource>(
        new RelationGoalSource(lit, env, rel, from, to, part));
  }
  return ExternalResolver(db_).Make(lit, env);
}

bool MaterializedInstance::HeadInsert(const PredRef& pred, const Tuple* t) {
  // Under Ordered Search, magic facts are intercepted into staging: the
  // context decides when a subgoal becomes available (paper §5.4.1).
  if (prog_->ordered_search) {
    if (Relation* stage = staging(pred)) {
      bool inserted = stage->Insert(t);
      if (inserted) ++stats_.inserts;
      return inserted;
    }
  }
  Relation* rel = internal(pred);
  CORAL_CHECK(rel != nullptr) << pred.ToString();
  bool inserted = rel->Insert(t);
  if (inserted) {
    ++stats_.inserts;
    if (trace_ != nullptr) {
      obs::TraceEvent ev;
      ev.kind = obs::TraceKind::kInsert;
      ev.module = decl_->name;
      ev.pred = DisplayName(pred);
      ev.detail = t->ToString();
      trace_->Emit(ev);
    }
  }
  return inserted;
}

StatusOr<bool> MaterializedInstance::ApplyVersion(
    size_t scc_idx, const RuleVersion& v, bool naive_override,
    const std::unordered_map<PredRef, Mark, PredRefHash>* cur) {
  const Rule& rule = prog_->rules[v.rule_index];
  const bool psn = !v.evaluate_once && cur == nullptr;

  // Applications are counted before the empty-delta short circuits so
  // the sequential and parallel drivers agree (the parallel driver
  // counts per version per iteration, without seeing worker skips).
  obs::RuleStats* rs =
      profile_ != nullptr ? &profile_->rule(v.rule_index) : nullptr;
  if (rs != nullptr) rs->applications.fetch_add(1, std::memory_order_relaxed);
  const uint64_t obs_sols0 = stats_.solutions;
  const uint64_t obs_ins0 = stats_.inserts;

  // Empty-delta short circuit (BSN/naive path; PSN has its own below):
  // without it a version whose delta literal sits late in the body would
  // enumerate the whole join prefix every iteration just to find nothing.
  if (!psn && v.delta_pos >= 0 && !naive_override) {
    PredRef dpred = rule.body[v.delta_pos].pred_ref();
    auto [dfrom, dto] = WindowFor(scc_idx, dpred, RangeSel::kDelta, cur);
    if (dfrom >= dto) return false;
    Relation* drel = internal(dpred);
    if (drel != nullptr) {
      // The window may span only empty subsidiaries; a quick probe.
      std::unique_ptr<TupleIterator> probe = drel->ScanRange(dfrom, dto);
      if (probe->Next() == nullptr) return false;
    }
  }

  // PSN: the delta window closes at a snapshot taken now, so facts
  // derived by earlier rules in this very pass are already visible
  // (immediate availability — the property PSN exploits, paper §4.2).
  const size_t version_idx = VersionIndex(scc_idx, v);
  Mark psn_from = 0, psn_to = 0;
  if (psn && v.delta_pos >= 0) {
    Relation* drel = internal(rule.body[v.delta_pos].pred_ref());
    CORAL_CHECK(drel != nullptr);
    psn_from = psn_marks_[scc_idx][version_idx];
    psn_to = drel->Snapshot();
    if (psn_from >= psn_to) return false;  // empty delta: skip
  }

  // Per-literal mark windows, computed once and shared by the VM and the
  // interpreter — BSN, PSN and Naive differ only here, which is what lets
  // one compiled program serve every driver.
  std::vector<std::pair<Mark, Mark>> windows(rule.body.size(),
                                             {Mark{0}, kMaxMark});
  for (size_t i = 0; i < rule.body.size(); ++i) {
    const Literal& lit = rule.body[i];
    if (lit.negated || internal(lit.pred_ref()) == nullptr) continue;
    if (psn) {
      if (static_cast<int>(i) == v.delta_pos) {
        windows[i] = {psn_from, psn_to};
      } else {
        windows[i] = {0, internal(lit.pred_ref())->Snapshot()};
      }
    } else {
      RangeSel sel = naive_override ? RangeSel::kFull : v.ranges[i];
      windows[i] = WindowFor(scc_idx, lit.pred_ref(), sel, cur);
    }
  }

  bool changed = false;
  bool vm_done = false;
  uint64_t probes = 0;
  uint64_t obs_derived = 0;

  // Join bytecode first; on kFallback the interpreter below re-runs the
  // application (tuples the VM already inserted are deduplicated, so the
  // re-run is idempotent — bind-time checks exclude multiset heads).
  if (const VmBoundRule* vb =
          VmRuleFor(scc_idx, v.evaluate_once, version_idx)) {
    struct Sink : vm::TupleSink {
      MaterializedInstance* self;
      PredRef head;
      HashRelation* hrel;  // non-null: skip the per-solution PredRef lookup
      bool Emit(const Tuple* t) override {
        if (hrel != nullptr) {
          if (!hrel->Insert(t)) return false;
          ++self->stats_.inserts;
          return true;
        }
        return self->HeadInsert(head, t);
      }
    } sink;
    sink.self = this;
    sink.head = rule.head.pred_ref();
    // The head relation was resolved once at bind time; re-resolving it by
    // PredRef hash on every solution showed up in profiles. Tracing still
    // needs HeadInsert's event emission, and ordered-search modules never
    // compile, so the staging intercept is unreachable here.
    sink.hrel = trace_ == nullptr ? vb->head : nullptr;
    vm::RunInput in;
    in.prog = vb->prog;
    in.rels = vb->rels;
    in.hash_rels = vb->hash_rels;
    in.windows = windows;
    in.factory = db_->factory();
    vm::RunStats rst;
    vm::RunResult r = vm::Execute(in, &sink, &rst);
    obs::VmCounters* vc = db_->vm_counters();
    vc->applications.fetch_add(1, std::memory_order_relaxed);
    FlushVmOps(vc, rst.ops);
    if (r == vm::RunResult::kOk) {
      stats_.solutions += rst.solutions;
      changed = rst.changed;
      probes = rst.tuples;
      obs_derived = rst.solutions;
      vm_done = true;
    } else {
      // Discard the VM's solution count — the interpreter re-counts from
      // scratch, so stats match an interpreter-only run exactly.
      vc->runtime_fallbacks.fetch_add(1, std::memory_order_relaxed);
    }
  }

  if (!vm_done) {
    BindEnv* env =
        EnvFor(scc_idx, v.evaluate_once, version_idx, rule.var_count);

    std::vector<std::unique_ptr<GoalSource>> sources;
    sources.reserve(rule.body.size());
    for (size_t i = 0; i < rule.body.size(); ++i) {
      const Literal& lit = rule.body[i];
      auto [from, to] = windows[i];
      CORAL_ASSIGN_OR_RETURN(std::unique_ptr<GoalSource> src,
                             MakeSource(&lit, env, from, to));
      sources.push_back(std::move(src));
    }

    RuleCursor cursor(std::move(sources), v.backtrack,
                      decl_->intelligent_backtracking, &trail_);
    Status inner;

    if (v.is_aggregate) {
      const AggHeadSpec* spec = AggSpecFor(v.rule_index);
      GroupAccumulator acc(spec, env, db_->factory());
      while (cursor.Next()) {
        ++stats_.solutions;
        inner = acc.Feed();
        if (!inner.ok()) break;
      }
      cursor.UndoAll();
      CORAL_RETURN_IF_ERROR(inner);
      CORAL_RETURN_IF_ERROR(cursor.status());
      CORAL_ASSIGN_OR_RETURN(std::vector<const Tuple*> tuples, acc.Finish());
      obs_derived = tuples.size();
      PredRef head = rule.head.pred_ref();
      for (const Tuple* t : tuples) changed |= HeadInsert(head, t);
    } else {
      PredRef head = rule.head.pred_ref();
      std::vector<TermRef> head_refs(rule.head.args.size());
      while (cursor.Next()) {
        ++stats_.solutions;
        for (size_t i = 0; i < rule.head.args.size(); ++i) {
          head_refs[i] = {rule.head.args[i], env};
        }
        const Tuple* t = ResolveTuple(head_refs, db_->factory());
        bool inserted = HeadInsert(head, t);
        changed |= inserted;
        if (inserted && decl_->explain) {
          // Explanation tool: record which body facts produced the head.
          Derivation d;
          d.head_pred = head;
          d.head = t;
          d.rule_index = v.rule_index;
          for (const Literal& lit : rule.body) {
            if (lit.negated) continue;
            if (db_->builtins()->Find(lit.pred->name,
                                      static_cast<uint32_t>(lit.args.size()))
                != nullptr &&
                internal(lit.pred_ref()) == nullptr) {
              continue;
            }
            std::vector<TermRef> refs;
            refs.reserve(lit.args.size());
            for (const Arg* a : lit.args) refs.push_back({a, env});
            d.body.emplace_back(lit.pred_ref(),
                                ResolveTuple(refs, db_->factory()));
          }
          derivations_.push_back(std::move(d));
        }
      }
      cursor.UndoAll();
      CORAL_RETURN_IF_ERROR(cursor.status());
      obs_derived = stats_.solutions - obs_sols0;  // one head tuple each
    }
    probes = cursor.probes();
  }

  if (rs != nullptr) {
    rs->probes.fetch_add(probes, std::memory_order_relaxed);
    rs->solutions.fetch_add(stats_.solutions - obs_sols0,
                            std::memory_order_relaxed);
    rs->derived.fetch_add(obs_derived, std::memory_order_relaxed);
    rs->inserted.fetch_add(stats_.inserts - obs_ins0,
                           std::memory_order_relaxed);
  }
  if (trace_ != nullptr) {
    obs::TraceEvent ev;
    ev.kind = obs::TraceKind::kRuleFire;
    ev.module = decl_->name;
    ev.scc = static_cast<int32_t>(scc_idx);
    ev.rule = static_cast<int32_t>(v.rule_index);
    ev.count = stats_.solutions - obs_sols0;
    trace_->Emit(ev);
  }

  if (psn && v.delta_pos >= 0) {
    psn_marks_[scc_idx][version_idx] = psn_to;
  }
  return changed;
}

size_t MaterializedInstance::EffectiveThreads() const {
  if (!parallel_safe_) return 1;
  // A maintenance pass (and the fixpoint it resumes) tracks per-predicate
  // deltas in plain containers; it runs sequentially.
  if (maintenance_mode_) return 1;
  // Snapshot readers evaluate single-threaded: concurrency comes from the
  // sessions themselves, and the shared worker pool is not coordinated
  // with the per-thread ReadView installation.
  if (ActiveReadView() != nullptr) return 1;
  int64_t n = decl_->parallel_threads > 0 ? decl_->parallel_threads
                                          : db_->num_threads();
  if (n < 1) n = 1;
  if (n > kMaxParallelThreads) n = kMaxParallelThreads;
  return static_cast<size_t>(n);
}

Status MaterializedInstance::ApplyVersionPartitioned(
    size_t scc_idx, const RuleVersion& v, bool naive_override,
    const std::unordered_map<PredRef, Mark, PredRefHash>* cur,
    uint32_t part_index, uint32_t part_count, Trail* trail,
    InsertBuffer* buffer, EvalStats* stats) {
  const Rule& rule = prog_->rules[v.rule_index];

  // Empty-delta short circuit, exactly as in ApplyVersion.
  if (v.delta_pos >= 0 && !naive_override) {
    PredRef dpred = rule.body[v.delta_pos].pred_ref();
    auto [dfrom, dto] = WindowFor(scc_idx, dpred, RangeSel::kDelta, cur);
    if (dfrom >= dto) return Status::OK();
    Relation* drel = internal(dpred);
    if (drel != nullptr) {
      std::unique_ptr<TupleIterator> probe = drel->ScanRange(dfrom, dto);
      if (probe->Next() == nullptr) return Status::OK();
    }
  }

  // The partitioned literal: the delta scan when it is a positive internal
  // literal, else the first positive internal literal. Partitioning any
  // single body scan splits the rule's solution set into disjoint,
  // covering shares, so each derivation is produced by exactly one worker.
  // A rule with an all-external body is evaluated whole by worker 0.
  int plit = -1;
  if (v.delta_pos >= 0 && !rule.body[v.delta_pos].negated &&
      internal(rule.body[v.delta_pos].pred_ref()) != nullptr) {
    plit = v.delta_pos;
  } else {
    for (size_t i = 0; i < rule.body.size(); ++i) {
      const Literal& lit = rule.body[i];
      if (!lit.negated && internal(lit.pred_ref()) != nullptr) {
        plit = static_cast<int>(i);
        break;
      }
    }
  }
  if (plit < 0 && part_index != 0) return Status::OK();

  // Partition column: the first argument of the partitioned literal that
  // is a join argument — non-ground, with every variable bound by an
  // earlier positive literal — so one subgoal's probes stay on one
  // worker. Constants are degenerate keys (every matching tuple hashes
  // alike); no join argument falls back to the whole-tuple hash.
  PartitionSpec part;
  if (plit >= 0 && part_count > 1) {
    std::set<uint32_t> bound;
    for (int i = 0; i < plit; ++i) {
      const Literal& lit = rule.body[i];
      if (lit.negated) continue;
      std::set<uint32_t> vars = VarsOfLiteral(lit);
      bound.insert(vars.begin(), vars.end());
    }
    static const std::set<uint32_t> kNoVars;
    const Literal& p = rule.body[plit];
    int col = -1;
    for (uint32_t c = 0; c < p.args.size(); ++c) {
      if (TermBound(p.args[c], bound) && !TermBound(p.args[c], kNoVars)) {
        col = static_cast<int>(c);
        break;
      }
    }
    part = PartitionSpec{col, part_index, part_count};
  }

  // Per-literal mark windows, shared by the VM and the interpreter.
  std::vector<std::pair<Mark, Mark>> windows(rule.body.size(),
                                             {Mark{0}, kMaxMark});
  for (size_t i = 0; i < rule.body.size(); ++i) {
    const Literal& lit = rule.body[i];
    if (lit.negated || internal(lit.pred_ref()) == nullptr) continue;
    RangeSel sel = naive_override ? RangeSel::kFull : v.ranges[i];
    windows[i] = WindowFor(scc_idx, lit.pred_ref(), sel, cur);
  }

  // Join bytecode first. The worker sink buffers exactly as the
  // interpreted worker loop does; on kFallback the interpreter below
  // re-runs the whole partition — buffered repeats are deduplicated in
  // the buffer and again by Insert at the merge barrier.
  if (const VmBoundRule* vb = VmRuleFor(scc_idx, v.evaluate_once,
                                        VersionIndex(scc_idx, v))) {
    struct Sink : vm::TupleSink {
      HashRelation* hrel = nullptr;
      InsertBuffer* buffer = nullptr;
      bool Emit(const Tuple* t) override {
        // Contains is a pure read on the frozen relation (bind-time
        // checks exclude multiset and aggregate-selection heads).
        if (hrel->Contains(t)) return false;
        buffer->Add(hrel, t, /*dedup=*/true);
        return false;
      }
    } sink;
    sink.hrel = vb->head;
    sink.buffer = buffer;
    vm::RunInput in;
    in.prog = vb->prog;
    in.rels = vb->rels;
    in.hash_rels = vb->hash_rels;
    in.windows = windows;
    in.factory = db_->factory();
    if (plit >= 0 && part_count > 1) {
      in.part_lit = plit;
      in.part_col = part.col;
      in.part_index = part_index;
      in.part_count = part_count;
    }
    vm::RunStats rst;
    vm::RunResult r = vm::Execute(in, &sink, &rst);
    obs::VmCounters* vc = db_->vm_counters();
    vc->applications.fetch_add(1, std::memory_order_relaxed);
    FlushVmOps(vc, rst.ops);
    if (r == vm::RunResult::kOk) {
      stats->solutions += rst.solutions;
      if (profile_ != nullptr) {
        obs::RuleStats& rstats = profile_->rule(v.rule_index);
        rstats.probes.fetch_add(rst.tuples, std::memory_order_relaxed);
        rstats.solutions.fetch_add(rst.solutions,
                                   std::memory_order_relaxed);
        rstats.derived.fetch_add(rst.solutions, std::memory_order_relaxed);
      }
      return Status::OK();
    }
    vc->runtime_fallbacks.fetch_add(1, std::memory_order_relaxed);
  }

  // Worker-private environment and trail: the shared EnvFor slots exist to
  // recycle allocations across iterations, which workers must not share.
  BindEnv env(rule.var_count);
  std::vector<std::unique_ptr<GoalSource>> sources;
  sources.reserve(rule.body.size());
  for (size_t i = 0; i < rule.body.size(); ++i) {
    const Literal& lit = rule.body[i];
    auto [from, to] = windows[i];
    CORAL_ASSIGN_OR_RETURN(
        std::unique_ptr<GoalSource> src,
        MakeSource(&lit, &env, from, to,
                   static_cast<int>(i) == plit ? part : PartitionSpec{}));
    sources.push_back(std::move(src));
  }

  RuleCursor cursor(std::move(sources), v.backtrack,
                    decl_->intelligent_backtracking, trail);
  PredRef head = rule.head.pred_ref();
  auto* hrel = static_cast<HashRelation*>(internal(head));
  CORAL_CHECK(hrel != nullptr) << head.ToString();
  // Contains is a pure read, so workers may pre-filter duplicates against
  // the (frozen) relation — but only when Insert would do nothing more
  // than that same duplicate check.
  const bool prefilter = !hrel->multiset() && hrel->selections().empty();
  std::vector<TermRef> head_refs(rule.head.args.size());
  uint64_t sols = 0;
  while (cursor.Next()) {
    ++sols;
    for (size_t i = 0; i < rule.head.args.size(); ++i) {
      head_refs[i] = {rule.head.args[i], &env};
    }
    const Tuple* t = ResolveTuple(head_refs, db_->factory());
    if (prefilter && hrel->Contains(t)) continue;
    buffer->Add(hrel, t, !hrel->multiset());
  }
  stats->solutions += sols;
  if (profile_ != nullptr) {
    // Worker-side counters: disjoint covering partitions make the sums
    // of solutions/derived thread-count invariant; probes are exact but
    // schedule-dependent (see RuleStats).
    obs::RuleStats& rstats = profile_->rule(v.rule_index);
    rstats.probes.fetch_add(cursor.probes(), std::memory_order_relaxed);
    rstats.solutions.fetch_add(sols, std::memory_order_relaxed);
    rstats.derived.fetch_add(sols, std::memory_order_relaxed);
  }
  cursor.UndoAll();
  return cursor.status();
}

Status MaterializedInstance::RunIterationParallel(size_t scc_idx,
                                                  bool* changed,
                                                  size_t nthreads) {
  *changed = false;
  const SccPlan& plan = prog_->seminaive.sccs[scc_idx];
  const bool naive = decl_->fixpoint == FixpointKind::kNaive;

  // Snapshot every internal relation, as in the sequential iteration. All
  // worker reads are bounded by this snapshot and all worker derivations
  // go to buffers, so relations are immutable for the whole parallel
  // phase; rule applications commute.
  std::unordered_map<PredRef, Mark, PredRefHash> cur;
  cur.reserve(internal_.size());
  for (auto& [pred, rel] : internal_) cur[pred] = rel->Snapshot();

  // Aggregate heads need one accumulator over ALL body solutions of the
  // rule, so those versions run sequentially after the merge (over the
  // same snapshot — same input the sequential engine gives them).
  std::vector<const RuleVersion*> par_versions, agg_versions;
  std::unordered_set<uint32_t> seen;
  for (const RuleVersion& v : plan.versions) {
    if (naive && !seen.insert(v.rule_index).second) continue;
    (v.is_aggregate ? agg_versions : par_versions).push_back(&v);
  }

  // Rule applications are counted by the driver, once per version per
  // iteration, matching the sequential engine's per-call count.
  if (profile_ != nullptr) {
    for (const RuleVersion* v : par_versions) {
      profile_->rule(v->rule_index)
          .applications.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // One buffer per (worker, version): merging version-major below keeps
  // cross-version duplicate attribution identical to the sequential
  // engine, which finishes inserting version k before starting k+1.
  struct Worker {
    Trail trail;
    std::vector<InsertBuffer> buffers;
    EvalStats stats;
    Status status;
    uint64_t ns = 0;
  };
  std::vector<Worker> workers(nthreads);
  for (Worker& wk : workers) wk.buffers.resize(par_versions.size());
  const bool timing = profile_ != nullptr;

  // Term construction must lock while workers run, even when the
  // Database default is single-threaded (e.g. @parallel(N) modules).
  // This flip (and its restore below) are the quiescent points the
  // MaybeMutexLock fiction in TermFactory relies on: no worker exists
  // before the flip, and Run() barriers before the restore, so the flag
  // itself is never read concurrently with a write. See
  // docs/CONCURRENCY.md, "The one fiction".
  TermFactory* factory = db_->factory();
  const bool was_concurrent = factory->concurrent();
  factory->set_concurrent(true);

  db_->thread_pool(nthreads)->Run(nthreads, [&](size_t w) {
    Worker& wk = workers[w];
    const uint64_t t0 = timing ? NowNs() : 0;
    for (size_t vi = 0; vi < par_versions.size(); ++vi) {
      wk.status = ApplyVersionPartitioned(
          scc_idx, *par_versions[vi], naive, &cur, static_cast<uint32_t>(w),
          static_cast<uint32_t>(nthreads), &wk.trail, &wk.buffers[vi],
          &wk.stats);
      if (!wk.status.ok()) break;
    }
    if (timing) wk.ns = NowNs() - t0;
  });

  factory->set_concurrent(was_concurrent);

  last_worker_ns_.clear();
  for (const Worker& wk : workers) {
    CORAL_RETURN_IF_ERROR(wk.status);
    stats_.solutions += wk.stats.solutions;
    if (timing) last_worker_ns_.push_back(wk.ns);
  }

  // Merge barrier: serial inserts re-run the full duplicate / subsumption
  // / aggregate-selection machinery, so the relations end the iteration
  // with exactly the tuple sets the sequential insert order produces.
  for (size_t vi = 0; vi < par_versions.size(); ++vi) {
    obs::RuleStats* rs =
        profile_ != nullptr
            ? &profile_->rule(par_versions[vi]->rule_index)
            : nullptr;
    for (const Worker& wk : workers) {
      for (const InsertBuffer::Entry& e : wk.buffers[vi].entries()) {
        if (e.rel->Insert(e.tuple)) {
          ++stats_.inserts;
          *changed = true;
          if (rs != nullptr) {
            rs->inserted.fetch_add(1, std::memory_order_relaxed);
          }
          if (trace_ != nullptr) {
            obs::TraceEvent ev;
            ev.kind = obs::TraceKind::kInsert;
            ev.module = decl_->name;
            ev.pred = e.rel->name();
            ev.detail = e.tuple->ToString();
            trace_->Emit(ev);
          }
        }
      }
    }
  }

  for (const RuleVersion* v : agg_versions) {
    CORAL_ASSIGN_OR_RETURN(bool c, ApplyVersion(scc_idx, *v, naive, &cur));
    *changed |= c;
  }

  if (!naive) prev_marks_[scc_idx] = std::move(cur);
  return Status::OK();
}

Status MaterializedInstance::RunOnceRules(size_t scc_idx) {
  for (const RuleVersion& v : prog_->seminaive.sccs[scc_idx].once) {
    CORAL_RETURN_IF_ERROR(ApplyVersion(scc_idx, v, false, nullptr).status());
  }
  return Status::OK();
}

Status MaterializedInstance::RunIteration(size_t scc_idx, bool* changed) {
  *changed = false;
  const SccPlan& plan = prog_->seminaive.sccs[scc_idx];
  FixpointKind kind = decl_->fixpoint;

  if (kind == FixpointKind::kPredicateSemiNaive) {
    for (const RuleVersion& v : plan.versions) {
      CORAL_ASSIGN_OR_RETURN(bool c, ApplyVersion(scc_idx, v, false, nullptr));
      *changed |= c;
    }
    return Status::OK();
  }

  // BSN / Naive: within one iteration every read is bounded by a snapshot
  // taken at iteration start, so rule applications are data-independent —
  // the property the parallel engine exploits.
  size_t nthreads = EffectiveThreads();
  if (nthreads > 1) {
    return RunIterationParallel(scc_idx, changed, nthreads);
  }

  std::unordered_map<PredRef, Mark, PredRefHash> cur;
  cur.reserve(internal_.size());
  for (auto& [pred, rel] : internal_) cur[pred] = rel->Snapshot();

  if (kind == FixpointKind::kNaive) {
    // One application per distinct rule, full windows.
    std::unordered_set<uint32_t> seen;
    for (const RuleVersion& v : plan.versions) {
      if (!seen.insert(v.rule_index).second) continue;
      CORAL_ASSIGN_OR_RETURN(bool c, ApplyVersion(scc_idx, v, true, &cur));
      *changed |= c;
    }
    return Status::OK();
  }

  for (const RuleVersion& v : plan.versions) {
    CORAL_ASSIGN_OR_RETURN(bool c, ApplyVersion(scc_idx, v, false, &cur));
    *changed |= c;
  }
  prev_marks_[scc_idx] = std::move(cur);
  return Status::OK();
}

Status MaterializedInstance::RunIterationObserved(size_t scc_idx,
                                                  bool* changed) {
  // Iteration-granularity deadline poll (the probe-granularity poll lives
  // in RuleCursor::Next); bounds how long a runaway fixpoint can overstay.
  CORAL_RETURN_IF_ERROR(CheckEvalDeadline());
  if (profile_ == nullptr && trace_ == nullptr) {
    return RunIteration(scc_idx, changed);
  }
  const uint64_t iter = stats_.iterations + 1;
  if (trace_ != nullptr) {
    obs::TraceEvent ev;
    ev.kind = obs::TraceKind::kIterBegin;
    ev.module = decl_->name;
    ev.scc = static_cast<int32_t>(scc_idx);
    ev.iter = iter;
    trace_->Emit(ev);
  }
  const uint64_t ins0 = stats_.inserts;
  const uint64_t sols0 = stats_.solutions;
  last_worker_ns_.clear();
  const uint64_t t0 = NowNs();
  Status st = RunIteration(scc_idx, changed);
  const uint64_t wall = NowNs() - t0;
  if (profile_ != nullptr) {
    obs::IterationStats it;
    it.scc = static_cast<uint32_t>(scc_idx);
    it.inserts = stats_.inserts - ins0;
    it.solutions = stats_.solutions - sols0;
    it.wall_ns = wall;
    it.worker_ns = std::move(last_worker_ns_);
    profile_->RecordIteration(std::move(it));
  }
  if (trace_ != nullptr) {
    obs::TraceEvent ev;
    ev.kind = obs::TraceKind::kIterEnd;
    ev.module = decl_->name;
    ev.scc = static_cast<int32_t>(scc_idx);
    ev.iter = iter;
    ev.count = stats_.inserts - ins0;
    ev.ns = wall;
    trace_->Emit(ev);
  }
  return st;
}

Status MaterializedInstance::RunGlobalPass(bool* changed) {
  *changed = false;
  size_t n = prog_->seminaive.sccs.size();
  for (size_t s = 0; s < n; ++s) {
    if (!once_done_[s]) {
      CORAL_RETURN_IF_ERROR(RunOnceRules(s));
      once_done_[s] = true;
      *changed = true;
    }
    bool scc_changed = true;
    while (scc_changed) {
      CORAL_RETURN_IF_ERROR(RunIterationObserved(s, &scc_changed));
      ++stats_.iterations;
      *changed |= scc_changed;
    }
  }
  return Status::OK();
}

}  // namespace coral
