#include "src/core/module_manager.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/analysis/analyzer.h"
#include "src/core/database.h"
#include "src/rel/readview.h"
#include "src/util/logging.h"
#include "src/vm/compiler.h"

namespace coral {

namespace {

/// Scan over a completed instance's answers; keeps the instance (and thus
/// the relations backing the yielded tuples' terms — actually the factory
/// owns those, but marks and tombstones live here) alive.
class EagerAnswerIterator : public TupleIterator {
 public:
  EagerAnswerIterator(std::shared_ptr<MaterializedInstance> inst,
                      const Tuple* goal)
      : inst_(std::move(inst)),
        goal_(goal),
        env_(std::make_unique<BindEnv>(goal->var_count())) {
    std::vector<TermRef> refs;
    refs.reserve(goal_->arity());
    for (uint32_t i = 0; i < goal_->arity(); ++i) {
      refs.push_back({goal_->arg(i), env_.get()});
    }
    scan_ = inst_->answer_relation()->Select(refs, 0, kMaxMark);
  }
  const Tuple* Next() override { return scan_->Next(); }

 private:
  std::shared_ptr<MaterializedInstance> inst_;
  const Tuple* goal_;
  std::unique_ptr<BindEnv> env_;
  std::unique_ptr<TupleIterator> scan_;
};

/// RAII guard for the inter-module call depth.
class DepthGuard {
 public:
  explicit DepthGuard(int* depth) : depth_(depth) { ++*depth_; }
  ~DepthGuard() { --*depth_; }

 private:
  int* depth_;
};

constexpr int kMaxCallDepth = 256;

// Per-thread: each session's query has its own module-call recursion
// budget (a member counter would be corrupted by concurrent readers).
thread_local int g_call_depth = 0;

}  // namespace

Status ModuleManager::AddModule(ModuleDecl decl, DiagnosticList* diags) {
  // Semantic analysis before registration (rule safety, binding modes,
  // export validity, annotation sanity, dead code, stratification). An
  // error — or any warning in strict mode — refuses the module and
  // leaves a previously registered version untouched.
  AnalyzerOptions opts;
  opts.strict = db_->strict();
  const BuiltinRegistry* builtins = db_->builtins();
  opts.is_builtin = [builtins](const std::string& name, uint32_t arity) {
    return builtins->Find(name, arity) != nullptr;
  };
  DiagnosticList analysis = AnalyzeModule(decl, opts);
  const bool reject = analysis.ShouldReject(opts.strict);
  std::string reject_text = analysis.RejectionText(opts.strict);
  if (diags != nullptr) diags->Append(analysis);
  if (reject) {
    return Status::InvalidArgument("module " + decl.name +
                                   " rejected by semantic analysis:\n" +
                                   reject_text);
  }

  MutexLock lock(&mu_);
  // Replace an existing module of the same name. The displaced entry is
  // retired rather than destroyed: queries already running against it
  // (possible under concurrent sessions) finish on the old version.
  for (auto it = modules_.begin(); it != modules_.end(); ++it) {
    if ((*it)->decl.name == decl.name) {
      for (auto eit = export_index_.begin(); eit != export_index_.end();) {
        if (eit->second == it->get()) {
          eit = export_index_.erase(eit);
        } else {
          ++eit;
        }
      }
      for (auto lit = local_index_.begin(); lit != local_index_.end();) {
        if (lit->second == decl.name) {
          lit = local_index_.erase(lit);
        } else {
          ++lit;
        }
      }
      retired_.push_back(std::move(*it));
      modules_.erase(it);
      names_.erase(std::find(names_.begin(), names_.end(), decl.name));
      break;
    }
  }

  auto entry = std::make_unique<ModuleEntry>();
  entry->decl = std::move(decl);
  if (entry->decl.eval_mode == EvalMode::kPipelined) {
    entry->pipelined =
        std::make_unique<PipelinedModule>(&entry->decl, db_);
  }
  for (const QueryFormDecl& form : entry->decl.exports) {
    PredRef pred{form.pred, static_cast<uint32_t>(form.adornment.size())};
    export_index_[pred] = entry.get();
  }
  // Non-exported rule heads are module-local (paper §5): visible to this
  // module's own rules only.
  for (const Rule& r : entry->decl.rules) {
    PredRef head = r.head.pred_ref();
    if (export_index_.count(head) == 0) {
      local_index_[head] = entry->decl.name;
    }
  }
  names_.push_back(entry->decl.name);
  modules_.push_back(std::move(entry));
  return Status::OK();
}

bool ModuleManager::Exports(const PredRef& pred) const {
  MutexLock lock(&mu_);
  return export_index_.count(pred) > 0;
}

bool ModuleManager::ExportsUnlocked(const PredRef& pred) const {
  return export_index_.count(pred) > 0;
}

bool ModuleManager::HasLocalOwnerUnlocked(const PredRef& pred) const {
  return local_index_.count(pred) > 0 && export_index_.count(pred) == 0;
}

std::string ModuleManager::LocalOwner(const PredRef& pred) const {
  MutexLock lock(&mu_);
  auto it = local_index_.find(pred);
  // Exported elsewhere wins: a name can be local in one module and
  // exported by another.
  if (it == local_index_.end() || export_index_.count(pred) > 0) {
    return std::string();
  }
  return it->second;
}

const QueryFormDecl* ModuleManager::SelectForm(
    const ModuleEntry& entry, const PredRef& pred,
    std::span<const TermRef> args) const {
  // Query binding pattern: an argument is 'b' unless it dereferences to
  // an unbound variable (partially instantiated terms count as bound —
  // Magic Templates handles non-ground seeds).
  std::string qpat;
  for (const TermRef& r : args) {
    TermRef d = Deref(r.term, r.env);
    qpat += d.term->kind() == ArgKind::kVariable ? 'f' : 'b';
  }

  const QueryFormDecl* best = nullptr;
  int best_score = INT32_MIN;
  for (const QueryFormDecl& form : entry.decl.exports) {
    if (form.pred != pred.sym || form.adornment.size() != pred.arity) {
      continue;
    }
    int matched = 0, excess = 0;
    for (size_t i = 0; i < form.adornment.size(); ++i) {
      if (form.adornment[i] != 'b') continue;
      if (qpat[i] == 'b') {
        ++matched;
      } else {
        ++excess;  // form propagates an argument the query leaves free
      }
    }
    // Prefer forms whose bound positions are all provided by the query
    // (no free seeding); among those the most selective.
    int score = excess == 0 ? 1000 + matched : matched - 10 * excess;
    if (score > best_score) {
      best_score = score;
      best = &form;
    }
  }
  return best;
}

StatusOr<ModuleManager::CompiledForm*> ModuleManager::CompileFormLocked(
    ModuleEntry* entry, const QueryFormDecl& form) {
  std::string key = form.pred->name + "/" +
                    std::to_string(form.adornment.size()) + "@" +
                    form.adornment;
  auto it = entry->forms.find(key);
  if (it != entry->forms.end()) return &it->second;
  RewriteOptions ropts;
  ropts.auto_reorder = db_->auto_optimize();
  ropts.auto_index = db_->auto_optimize();
  const BuiltinRegistry* builtins = db_->builtins();
  ropts.is_builtin = [builtins](const std::string& name, uint32_t arity) {
    return builtins->Find(name, arity) != nullptr;
  };
  // Real base-relation sizes at compile time feed the cardinality domain.
  Database* db = db_;
  ropts.base_card = [db](const PredRef& pred) {
    Relation* rel = db->FindBaseRelation(pred);
    if (rel == nullptr) return absint::Card::kMany;  // unknown / late facts
    size_t n = rel->size();
    if (n == 0) return absint::Card::kFew;  // may still be loaded later
    if (n == 1) return absint::Card::kOne;
    return n <= 16 ? absint::Card::kFew : absint::Card::kMany;
  };
  CORAL_ASSIGN_OR_RETURN(
      RewrittenProgram prog,
      RewriteModule(entry->decl, form, db_->factory(), ropts));
  // Paper §2: "The rewritten program is stored as a text file — which is
  // useful as a debugging aid for the user."
  if (!db_->listing_dir().empty()) {
    std::string path = db_->listing_dir() + "/" + entry->decl.name + "." +
                       form.pred->name + "." + form.adornment + ".crl";
    std::ofstream out(path);
    if (out) {
      out << "% rewritten program for module " << entry->decl.name
          << ", query form " << form.pred->name << "(" << form.adornment
          << ")\n" << prog.listing;
      // The optimizer plan rides along as comment lines.
      std::istringstream plan(prog.plan);
      for (std::string line; std::getline(plan, line);) {
        out << "% " << line << "\n";
      }
    }
  }
  CompiledForm cf;
  cf.prog = std::make_unique<RewrittenProgram>(std::move(prog));
  // Dependency set for update routing: body predicates of the rewritten
  // rules that are neither module-internal (some rule's head) nor
  // builtins are base relations this form reads; module calls make the
  // form's answers depend on state we do not track.
  {
    std::unordered_set<PredRef, PredRefHash> heads;
    for (const Rule& r : cf.prog->rules) heads.insert(r.head.pred_ref());
    for (const Rule& r : cf.prog->rules) {
      for (const Literal& lit : r.body) {
        PredRef p = lit.pred_ref();
        if (heads.count(p) > 0) continue;
        if (ropts.is_builtin(p.sym->name, p.arity)) continue;
        if (ExportsUnlocked(p) || HasLocalOwnerUnlocked(p)) {
          cf.external_module_deps = true;
          continue;
        }
        cf.base_deps.insert(p);
      }
    }
  }
  // Lower the rule versions to join bytecode (docs/VM.md). Compiled
  // unconditionally so a later set_use_vm(true) finds the cached form
  // ready; whether it actually runs is decided at activation time.
  {
    vm::CompileEnv cenv;
    cenv.is_builtin = ropts.is_builtin;
    ModuleManager* self = this;
    // Unlocked variants: these callbacks run during CompileModule, below,
    // while this thread already holds mu_.
    cenv.is_module_pred = [self](const PredRef& p) {
      return self->ExportsUnlocked(p) || self->HasLocalOwnerUnlocked(p);
    };
    cf.vm = std::make_unique<vm::ModuleProgram>(
        vm::CompileModule(*cf.prog, entry->decl, cenv));
    // Whole-plan audit (docs/VM.md "Verification"): cross-check every
    // compiled program against the rewritten plan, declared indexes, and
    // the absint type facts. Audit-rejected programs are nulled out here
    // so they can never bind; they run interpreted with the reason in
    // the listing (CRL301).
    if (cf.vm->compiled > 0) {
      absint::AbsIntOptions aopts;
      aopts.is_builtin = ropts.is_builtin;
      aopts.base_card = ropts.base_card;
      if (cf.prog->answer_pred.sym != nullptr &&
          !cf.prog->answer_adornment.empty()) {
        std::vector<bool> bound;
        for (char c : cf.prog->answer_adornment) bound.push_back(c == 'b');
        aopts.seeds[cf.prog->answer_pred] = std::move(bound);
      }
      if (cf.prog->uses_magic && cf.prog->seed_pred.sym != nullptr) {
        aopts.assumed_facts.insert(cf.prog->seed_pred);
      }
      for (const auto& [magic, done] : cf.prog->done_of) {
        aopts.assumed_facts.insert(done);
      }
      absint::AnalysisResult facts =
          absint::AnalyzeRules(cf.prog->rules, cf.prog->graph, aopts);
      vm::AuditOptions vopts;
      vopts.rewritten = cf.prog.get();
      vopts.decl = &entry->decl;
      vopts.facts = &facts;
      vopts.index_plan_authoritative = db_->auto_optimize();
      cf.audit = std::make_unique<vm::ModuleAudit>(
          vm::AuditModule(*cf.vm, vopts));
      for (const vm::ProgramVerdict& v : cf.audit->verdicts) {
        if (v.report.ok()) continue;
        auto& tbl = v.once ? cf.vm->sccs[v.scc].once
                           : cf.vm->sccs[v.scc].versions;
        if (v.index < tbl.size() && tbl[v.index] != nullptr) {
          tbl[v.index].reset();
          --cf.vm->compiled;
          ++cf.vm->skipped;
          --cf.vm->verified;
          ++cf.vm->verifier_rejected;
          cf.vm->listing += "scc " + std::to_string(v.scc) +
                            (v.once ? " once " : " version ") +
                            std::to_string(v.index) +
                            " audit rejected: " +
                            v.report.FirstError()->ToString() + " [" +
                            vm::vdiag::kUnverifiable + "]\n";
        }
      }
    }
    obs::VmCounters& vc = *db_->vm_counters();
    vc.programs_verified.fetch_add(cf.vm->verified,
                                   std::memory_order_relaxed);
    vc.verifier_rejected.fetch_add(cf.vm->verifier_rejected,
                                   std::memory_order_relaxed);
    vc.compile_skips.fetch_add(cf.vm->skipped - cf.vm->verifier_rejected,
                               std::memory_order_relaxed);
    if (cf.audit != nullptr) {
      vc.verifier_warnings.fetch_add(cf.audit->warnings,
                                     std::memory_order_relaxed);
      std::string audit_text = cf.audit->ToString();
      if (!audit_text.empty()) {
        cf.prog->plan += "--- bytecode verifier ---\n" + audit_text;
      }
    }
    if (!cf.vm->listing.empty()) {
      cf.prog->plan += "--- join bytecode ---\n" + cf.vm->listing;
    }
  }
  auto [nit, inserted] = entry->forms.emplace(key, std::move(cf));
  CORAL_CHECK(inserted);
  return &nit->second;
}

std::vector<ModuleManager::FormBytecodeAudit>
ModuleManager::AuditAllBytecode() {
  MutexLock lock(&mu_);
  std::vector<FormBytecodeAudit> out;
  for (auto& entry : modules_) {
    for (const QueryFormDecl& form : entry->decl.exports) {
      FormBytecodeAudit fa;
      fa.module = entry->decl.name;
      fa.pred = form.pred->name + "/" +
                std::to_string(form.adornment.size());
      fa.adornment = form.adornment;
      if (entry->pipelined != nullptr) {
        fa.fallback_reason = "pipelined module: runs interpreted";
        out.push_back(std::move(fa));
        continue;
      }
      StatusOr<CompiledForm*> cf = CompileFormLocked(entry.get(), form);
      if (!cf.ok()) {
        fa.error = cf.status().message();
      } else {
        const CompiledForm* f = *cf;
        if (f->vm != nullptr) {
          fa.compiled = f->vm->compiled;
          fa.skipped = f->vm->skipped;
          // A module-level skip ("module interpreted: <why>") leaves no
          // compiled programs; surface the reason.
          if (f->vm->sccs.empty() && !f->vm->listing.empty()) {
            std::string_view l = f->vm->listing;
            if (l.rfind("module interpreted: ", 0) == 0) {
              l.remove_prefix(sizeof("module interpreted: ") - 1);
              size_t nl = l.find('\n');
              fa.fallback_reason =
                  std::string(l.substr(0, nl)) + ": runs interpreted";
            }
          }
        }
        if (f->audit != nullptr) fa.audit = *f->audit;
      }
      out.push_back(std::move(fa));
    }
  }
  return out;
}

void ModuleManager::InvalidateDependents(const PredRef& pred) {
  MutexLock lock(&mu_);
  for (auto& entry : modules_) {
    for (auto& [key, cf] : entry->forms) {
      if (cf.saved == nullptr) continue;
      if (cf.external_module_deps || cf.base_deps.count(pred) > 0) {
        cf.saved.reset();
      }
    }
  }
}

void ModuleManager::PropagateUpdate(const UpdateDelta& delta,
                                    UpdateResult* result) {
  // Phase 1, under mu_: collect the affected saved instances. The
  // CompiledForm pointers stay valid outside the lock (node-stable map,
  // entries never destroyed); the shared_ptr keeps each instance alive.
  struct Affected {
    CompiledForm* cf;
    std::shared_ptr<MaterializedInstance> inst;
  };
  std::vector<Affected> affected;
  {
    MutexLock lock(&mu_);
    for (auto& entry : modules_) {
      for (auto& [key, cf] : entry->forms) {
        if (cf.saved == nullptr) continue;
        bool touched = cf.external_module_deps;
        if (!touched) {
          for (const auto& [p, vec] : delta.plus) {
            if (cf.base_deps.count(p) > 0) {
              touched = true;
              break;
            }
          }
        }
        if (!touched) {
          for (const auto& [p, vec] : delta.minus) {
            if (cf.base_deps.count(p) > 0) {
              touched = true;
              break;
            }
          }
        }
        if (touched) affected.push_back({&cf, cf.saved});
      }
    }
  }

  // Phase 2, outside mu_ (the caller's commit lock serializes writers):
  // maintain covered shapes, mark the rest for invalidation. A failed
  // maintenance pass leaves the instance half-updated, so it is dropped
  // like an unmaintainable one.
  std::vector<CompiledForm*> drop;
  for (Affected& a : affected) {
    bool maintained = false;
    if (db_->maintenance_enabled() && delta.ground_only &&
        !a.cf->external_module_deps && a.inst->CanMaintain()) {
      maintained = a.inst->Maintain(delta, result).ok();
    }
    if (maintained) {
      ++result->maintained;
    } else {
      ++result->invalidated;
      drop.push_back(a.cf);
    }
  }

  // Phase 3, under mu_: drop the failures. Only reset if the saved
  // pointer is still the instance we worked on (a concurrent reader
  // cannot have replaced it — writers are serialized — but be exact).
  if (!drop.empty()) {
    MutexLock lock(&mu_);
    for (size_t i = 0; i < affected.size(); ++i) {
      CompiledForm* cf = affected[i].cf;
      if (std::find(drop.begin(), drop.end(), cf) != drop.end() &&
          cf->saved == affected[i].inst) {
        cf->saved.reset();
      }
    }
  }
}

StatusOr<std::unique_ptr<TupleIterator>> ModuleManager::OpenQuery(
    const PredRef& pred, std::span<const TermRef> args) {
  if (g_call_depth >= kMaxCallDepth) {
    return Status::FailedPrecondition(
        "inter-module call depth exceeded (cyclic module calls?)");
  }
  DepthGuard guard(&g_call_depth);

  // Phase 1, under mu_: resolve the export and compile the form. The
  // returned pointers outlive the lock — entries are never destroyed
  // (replacement retires them), forms live in a node-stable map, and
  // decl/prog/vm are immutable once compiled.
  ModuleEntry* entry;
  CompiledForm* cf = nullptr;
  {
    MutexLock lock(&mu_);
    auto eit = export_index_.find(pred);
    if (eit == export_index_.end()) {
      return Status::NotFound("no module exports " + pred.ToString());
    }
    entry = eit->second;
    if (entry->decl.eval_mode != EvalMode::kPipelined) {
      const QueryFormDecl* form = SelectForm(*entry, pred, args);
      if (form == nullptr) {
        return Status::NotFound("no query form of " + pred.ToString() +
                                " matches this call");
      }
      CORAL_ASSIGN_OR_RETURN(cf, CompileFormLocked(entry, *form));
    }
  }

  if (obs::TraceSink* sink = db_->trace_sink()) {
    obs::TraceEvent ev;
    ev.kind = obs::TraceKind::kModuleCall;
    ev.module = entry->decl.name;
    ev.pred = pred.ToString();
    sink->Emit(ev);
  }

  if (entry->decl.eval_mode == EvalMode::kPipelined) {
    return entry->pipelined->OpenQuery(pred, args);
  }

  // Phase 2, outside mu_: instance setup and evaluation. Init acquires
  // the database commit lock (rank below mu_), so it must not run under
  // the manager lock.
  std::shared_ptr<MaterializedInstance> inst;
  // A snapshot reader never touches the shared saved instance: it gets a
  // fresh, transient activation evaluated against its own view. The
  // save-module memo (paper §5.4.2) stays a single-threaded-writer
  // facility.
  const bool use_saved =
      entry->decl.save_module && ActiveReadView() == nullptr;
  if (use_saved) {
    if (cf->saved == nullptr) {
      auto saved = std::make_shared<MaterializedInstance>(
          cf->prog.get(), &entry->decl, db_);
      saved->set_vm_program(cf->vm.get());
      CORAL_RETURN_IF_ERROR(saved->Init());
      cf->saved = std::move(saved);
    }
    inst = cf->saved;
    if (inst->in_step()) {
      return Status::FailedPrecondition(
          "recursive invocation of save module " + entry->decl.name +
          " (paper §5.4.2 restriction)");
    }
  } else {
    inst = std::make_shared<MaterializedInstance>(cf->prog.get(),
                                                  &entry->decl, db_);
    inst->set_vm_program(cf->vm.get());
    CORAL_RETURN_IF_ERROR(inst->Init());
  }
  CORAL_RETURN_IF_ERROR(inst->Seed(args));
  {
    MutexLock lock(&mu_);
    last_instance_ = inst;
  }

  const Tuple* goal = ResolveTuple(args, db_->factory());

  // Save modules and modules with aggregate selections compute all
  // answers before returning any (paper §5.6); otherwise answers are
  // delivered per fixpoint iteration (lazy, §5.4.3).
  bool eager = entry->decl.save_module || entry->decl.eager ||
               !entry->decl.agg_selections.empty() ||
               entry->decl.ordered_search;
  if (eager) {
    CORAL_RETURN_IF_ERROR(inst->RunToCompletion());
    return std::unique_ptr<TupleIterator>(
        new EagerAnswerIterator(std::move(inst), goal));
  }
  return std::unique_ptr<TupleIterator>(
      new LazyAnswerIterator(std::move(inst), goal));
}

StatusOr<std::string> ModuleManager::RewrittenListing(
    const std::string& module_name, const std::string& pred,
    const std::string& adornment) {
  MutexLock lock(&mu_);
  for (auto& entry : modules_) {
    if (entry->decl.name != module_name) continue;
    Symbol sym = db_->factory()->symbols().Intern(pred);
    QueryFormDecl form{sym, adornment, SourceLoc{}};
    CORAL_ASSIGN_OR_RETURN(CompiledForm * cf,
                           CompileFormLocked(entry.get(), form));
    return cf->prog->listing;
  }
  return Status::NotFound("no module named " + module_name);
}

StatusOr<std::string> ModuleManager::PlanListing(
    const std::string& module_name, const std::string& pred,
    const std::string& adornment) {
  MutexLock lock(&mu_);
  for (auto& entry : modules_) {
    if (entry->decl.name != module_name) continue;
    Symbol sym = db_->factory()->symbols().Intern(pred);
    QueryFormDecl form{sym, adornment, SourceLoc{}};
    CORAL_ASSIGN_OR_RETURN(CompiledForm * cf,
                           CompileFormLocked(entry.get(), form));
    return cf->prog->plan;
  }
  return Status::NotFound("no module named " + module_name);
}

std::string ModuleManager::PlanReport() const {
  MutexLock lock(&mu_);
  std::string out;
  for (const auto& entry : modules_) {
    for (const auto& [key, cf] : entry->forms) {
      out += "plan for module " + entry->decl.name + ", query form " + key +
             "\n";
      out += cf.prog->plan;
      out += "\n";
    }
  }
  return out;
}

EvalStats ModuleManager::last_stats() const {
  MutexLock lock(&mu_);
  return last_instance_ == nullptr ? EvalStats{} : last_instance_->stats();
}

StatusOr<std::string> ModuleManager::ExplainLast(const Tuple* fact) const {
  std::shared_ptr<MaterializedInstance> inst;
  {
    MutexLock lock(&mu_);
    inst = last_instance_;
  }
  if (inst == nullptr) {
    return Status::FailedPrecondition("no module evaluation has run");
  }
  if (!inst->decl().explain) {
    return Status::FailedPrecondition(
        "module " + inst->decl().name +
        " does not record derivations; add the @explain annotation");
  }
  return inst->Explain(fact);
}

}  // namespace coral
