#include "src/core/builtins.h"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <optional>
#include <vector>

#include "src/util/logging.h"

namespace coral {

void BuiltinRegistry::Register(const std::string& name, uint32_t arity,
                               BuiltinFn fn) {
  fns_[name + "/" + std::to_string(arity)] = std::move(fn);
}

const BuiltinFn* BuiltinRegistry::Find(const std::string& name,
                                       uint32_t arity) const {
  auto it = fns_.find(name + "/" + std::to_string(arity));
  return it == fns_.end() ? nullptr : &it->second;
}

namespace {

// ---------------------------------------------------------------------
// Arithmetic
// ---------------------------------------------------------------------

/// Numeric value with CORAL's promotions: int64 -> BigInt on overflow;
/// any double operand makes the result double.
struct NumVal {
  enum class Kind { kInt, kDouble, kBig } kind;
  int64_t i = 0;
  double d = 0;
  BigInt big;

  double AsDouble() const {
    switch (kind) {
      case Kind::kInt: return static_cast<double>(i);
      case Kind::kDouble: return d;
      case Kind::kBig: {
        int64_t v;
        if (big.FitsInt64(&v)) return static_cast<double>(v);
        // Good-enough magnitude via decimal string.
        return std::strtod(big.ToString().c_str(), nullptr);
      }
    }
    return 0;
  }
  BigInt AsBig() const {
    return kind == Kind::kBig ? big : BigInt(i);
  }
};

std::optional<NumVal> NumOf(const Arg* t) {
  switch (t->kind()) {
    case ArgKind::kInt:
      return NumVal{NumVal::Kind::kInt, ArgCast<IntArg>(t)->value(), 0, {}};
    case ArgKind::kDouble:
      return NumVal{NumVal::Kind::kDouble, 0, ArgCast<DoubleArg>(t)->value(),
                    {}};
    case ArgKind::kBigInt:
      return NumVal{NumVal::Kind::kBig, 0, 0, ArgCast<BigIntArg>(t)->value()};
    default:
      return std::nullopt;
  }
}

const Arg* MakeNum(const NumVal& v, TermFactory* f) {
  switch (v.kind) {
    case NumVal::Kind::kInt: return f->MakeInt(v.i);
    case NumVal::Kind::kDouble: return f->MakeDouble(v.d);
    case NumVal::Kind::kBig: {
      int64_t small;
      if (v.big.FitsInt64(&small)) return f->MakeInt(small);  // demote
      return f->MakeBigInt(v.big);
    }
  }
  CORAL_UNREACHABLE();
}

StatusOr<NumVal> ApplyBinary(const std::string& op, const NumVal& a,
                             const NumVal& b) {
  if (a.kind == NumVal::Kind::kDouble || b.kind == NumVal::Kind::kDouble) {
    double x = a.AsDouble(), y = b.AsDouble();
    NumVal r{NumVal::Kind::kDouble, 0, 0, {}};
    if (op == "+") r.d = x + y;
    else if (op == "-") r.d = x - y;
    else if (op == "*") r.d = x * y;
    else if (op == "/") {
      if (y == 0) return Status::InvalidArgument("division by zero");
      r.d = x / y;
    } else if (op == "min") r.d = std::min(x, y);
    else if (op == "max") r.d = std::max(x, y);
    else if (op == "mod") {
      return Status::InvalidArgument("mod requires integer operands");
    } else {
      return Status::Internal("unknown arithmetic operator " + op);
    }
    return r;
  }
  if (a.kind == NumVal::Kind::kBig || b.kind == NumVal::Kind::kBig) {
    BigInt x = a.AsBig(), y = b.AsBig();
    NumVal r{NumVal::Kind::kBig, 0, 0, {}};
    if (op == "+") r.big = x + y;
    else if (op == "-") r.big = x - y;
    else if (op == "*") r.big = x * y;
    else if (op == "/" || op == "mod") {
      BigInt q, rem;
      CORAL_RETURN_IF_ERROR(BigInt::DivMod(x, y, &q, &rem));
      r.big = op == "/" ? q : rem;
    } else if (op == "min") r.big = x < y ? x : y;
    else if (op == "max") r.big = x < y ? y : x;
    else return Status::Internal("unknown arithmetic operator " + op);
    return r;
  }
  // int64 with overflow promotion to BigInt.
  int64_t x = a.i, y = b.i, res;
  NumVal r{NumVal::Kind::kInt, 0, 0, {}};
  bool overflow = false;
  if (op == "+") overflow = __builtin_add_overflow(x, y, &res);
  else if (op == "-") overflow = __builtin_sub_overflow(x, y, &res);
  else if (op == "*") overflow = __builtin_mul_overflow(x, y, &res);
  else if (op == "/") {
    if (y == 0) return Status::InvalidArgument("division by zero");
    if (x == INT64_MIN && y == -1) {
      overflow = true;
      res = 0;
    } else {
      res = x / y;
    }
  } else if (op == "mod") {
    if (y == 0) return Status::InvalidArgument("mod by zero");
    res = x % y;
  } else if (op == "min") res = std::min(x, y);
  else if (op == "max") res = std::max(x, y);
  else return Status::Internal("unknown arithmetic operator " + op);
  if (overflow) {
    NumVal rb{NumVal::Kind::kBig, 0, 0, {}};
    return ApplyBinary(op, NumVal{NumVal::Kind::kBig, 0, 0, BigInt(x)},
                       NumVal{NumVal::Kind::kBig, 0, 0, BigInt(y)});
    (void)rb;
  }
  r.i = res;
  return r;
}

bool IsArithFunctor(const FunctorArg* f) {
  const std::string& n = f->name();
  if (f->arity() == 2) {
    return n == "+" || n == "-" || n == "*" || n == "/" || n == "mod" ||
           n == "min" || n == "max";
  }
  if (f->arity() == 1) return n == "-" || n == "abs";
  return false;
}

StatusOr<NumVal> EvalNumericChild(const Arg* t, BindEnv* env,
                                  TermFactory* f) {
  CORAL_ASSIGN_OR_RETURN(TermRef r, EvalArith(t, env, f));
  if (r.term->kind() == ArgKind::kVariable) {
    return Status::FailedPrecondition(
        "unbound variable in arithmetic expression");
  }
  auto num = NumOf(r.term);
  if (!num.has_value()) {
    return Status::InvalidArgument("non-numeric operand in arithmetic: " +
                                   r.term->ToString());
  }
  return *num;
}

}  // namespace

StatusOr<TermRef> EvalArith(const Arg* t, BindEnv* env, TermFactory* f) {
  TermRef r = Deref(t, env);
  if (r.term->kind() != ArgKind::kAtomOrFunctor) return r;
  const auto* fn = ArgCast<FunctorArg>(r.term);
  if (!IsArithFunctor(fn)) return r;

  if (fn->arity() == 1) {
    CORAL_ASSIGN_OR_RETURN(NumVal v, EvalNumericChild(fn->arg(0), r.env, f));
    NumVal out = v;
    if (fn->name() == "-") {
      CORAL_ASSIGN_OR_RETURN(
          out, ApplyBinary("-", NumVal{NumVal::Kind::kInt, 0, 0, {}}, v));
    } else {  // abs
      switch (v.kind) {
        case NumVal::Kind::kInt:
          if (v.i < 0) {
            CORAL_ASSIGN_OR_RETURN(
                out,
                ApplyBinary("-", NumVal{NumVal::Kind::kInt, 0, 0, {}}, v));
          }
          break;
        case NumVal::Kind::kDouble:
          out.d = std::fabs(v.d);
          break;
        case NumVal::Kind::kBig:
          if (v.big.is_negative()) out.big = -v.big;
          break;
      }
    }
    return TermRef{MakeNum(out, f), nullptr};
  }

  CORAL_ASSIGN_OR_RETURN(NumVal a, EvalNumericChild(fn->arg(0), r.env, f));
  CORAL_ASSIGN_OR_RETURN(NumVal b, EvalNumericChild(fn->arg(1), r.env, f));
  CORAL_ASSIGN_OR_RETURN(NumVal out, ApplyBinary(fn->name(), a, b));
  return TermRef{MakeNum(out, f), nullptr};
}

// ---------------------------------------------------------------------
// Standard builtins
// ---------------------------------------------------------------------

namespace {

/// Zero- or one-solution generator driven by a callback evaluated on the
/// first Next().
class OnceGenerator : public BuiltinGenerator {
 public:
  explicit OnceGenerator(std::function<bool(Trail*)> f) : f_(std::move(f)) {}
  bool Next(Trail* trail) override {
    if (done_) return false;
    done_ = true;
    return f_(trail);
  }

 private:
  std::function<bool(Trail*)> f_;
  bool done_ = false;
};

bool RefGround(TermRef r) {
  r = Deref(r.term, r.env);
  if (r.term->IsGround()) return true;
  switch (r.term->kind()) {
    case ArgKind::kVariable:
      return false;
    case ArgKind::kAtomOrFunctor: {
      const auto* f = ArgCast<FunctorArg>(r.term);
      for (const Arg* c : f->args()) {
        if (!RefGround({c, r.env})) return false;
      }
      return true;
    }
    case ArgKind::kSet: {
      const auto* s = ArgCast<SetArg>(r.term);
      for (const Arg* c : s->elems()) {
        if (!RefGround({c, r.env})) return false;
      }
      return true;
    }
    default:
      return true;
  }
}

/// Walks a (dereferenced) list spine. Returns the element TermRefs and
/// sets *proper to whether the spine ends in []. The tail ref is stored in
/// *tail when not proper.
std::vector<TermRef> WalkList(TermRef list, bool* proper, TermRef* tail) {
  std::vector<TermRef> elems;
  TermRef cur = Deref(list.term, list.env);
  while (cur.term->kind() == ArgKind::kAtomOrFunctor) {
    const auto* f = ArgCast<FunctorArg>(cur.term);
    if (f->arity() == 2 && f->name() == ".") {
      elems.push_back({f->arg(0), cur.env});
      cur = Deref(f->arg(1), cur.env);
      continue;
    }
    break;
  }
  *proper = IsAtom(cur.term, "[]");
  *tail = cur;
  return elems;
}

/// Builds a list term from element refs by resolving each element (a
/// snapshot: unbound variables are renamed into *list_env).
struct BuiltTerm {
  const Arg* term;
  std::unique_ptr<BindEnv> env;  // scope for renamed variables
};

BuiltTerm BuildList(std::span<const TermRef> elems, TermRef tail_ref,
                    TermFactory* f, Trail* trail) {
  VarRenamer renamer;
  std::vector<const Arg*> resolved;
  resolved.reserve(elems.size());
  for (const TermRef& e : elems) {
    resolved.push_back(ResolveTerm(e.term, e.env, f, &renamer));
  }
  const Arg* tail = tail_ref.term == nullptr
                        ? f->Nil()
                        : ResolveTerm(tail_ref.term, tail_ref.env, f,
                                      &renamer);
  const Arg* list = f->MakeList(resolved, tail);
  auto env = std::make_unique<BindEnv>(renamer.count());
  // Keep variable sharing: bind the original (caller-scope) variables to
  // their canonical stand-ins in the new environment.
  LinkRenamedVars(renamer, env.get(), f, trail);
  return BuiltTerm{list, std::move(env)};
}

StatusOr<std::unique_ptr<BuiltinGenerator>> EqBuiltin(
    std::span<const TermRef> args, TermFactory* f) {
  TermRef a = args[0], b = args[1];
  return std::unique_ptr<BuiltinGenerator>(
      new OnceGenerator([a, b, f](Trail* trail) {
        auto ea = EvalArith(a.term, a.env, f);
        auto eb = EvalArith(b.term, b.env, f);
        // Arithmetic faults make the goal fail (CORAL has no run-time
        // type errors that abort evaluation; see paper §9).
        if (!ea.ok() || !eb.ok()) return false;
        return Unify(ea->term, ea->env, eb->term, eb->env, trail);
      }));
}

StatusOr<std::unique_ptr<BuiltinGenerator>> NeqBuiltin(
    std::span<const TermRef> args, TermFactory* f) {
  TermRef a = args[0], b = args[1];
  return std::unique_ptr<BuiltinGenerator>(
      new OnceGenerator([a, b, f](Trail* trail) {
        auto ea = EvalArith(a.term, a.env, f);
        auto eb = EvalArith(b.term, b.env, f);
        if (!ea.ok() || !eb.ok()) return false;
        Trail::Mark m = trail->mark();
        bool unifies = Unify(ea->term, ea->env, eb->term, eb->env, trail);
        trail->UndoTo(m);
        return !unifies;
      }));
}

StatusOr<std::unique_ptr<BuiltinGenerator>> CompareBuiltin(
    const std::string& op, std::span<const TermRef> args, TermFactory* f) {
  TermRef a = args[0], b = args[1];
  return std::unique_ptr<BuiltinGenerator>(
      new OnceGenerator([a, b, op, f](Trail*) {
        auto ea = EvalArith(a.term, a.env, f);
        auto eb = EvalArith(b.term, b.env, f);
        if (!ea.ok() || !eb.ok()) return false;
        if (!RefGround(*ea) || !RefGround(*eb)) return false;
        VarRenamer ren;
        const Arg* ta = ResolveTerm(ea->term, ea->env, f, &ren);
        const Arg* tb = ResolveTerm(eb->term, eb->env, f, &ren);
        int c = CompareArgs(ta, tb);
        if (op == "<") return c < 0;
        if (op == ">") return c > 0;
        if (op == "=<") return c <= 0;
        return c >= 0;  // ">="
      }));
}

/// append/3 (needed by the paper's Fig. 3 program). Modes:
///   (+list, any, any): concatenate, unify with the third argument.
///   (any, any, +list): enumerate all splits.
class AppendGenerator : public BuiltinGenerator {
 public:
  AppendGenerator(std::span<const TermRef> args, TermFactory* f)
      : a_(args[0]), b_(args[1]), c_(args[2]), f_(f) {}

  bool Next(Trail* trail) override {
    if (!init_) {
      init_ = true;
      bool proper;
      TermRef tail;
      std::vector<TermRef> elems = WalkList(a_, &proper, &tail);
      if (proper) {
        mode_ = Mode::kForward;
        forward_elems_ = std::move(elems);
      } else {
        std::vector<TermRef> celems = WalkList(c_, &proper, &tail);
        if (!proper) return false;  // insufficiently instantiated
        mode_ = Mode::kSplit;
        split_elems_ = std::move(celems);
      }
    }
    if (mode_ == Mode::kForward) {
      if (done_) return false;
      done_ = true;
      BuiltTerm joined = BuildList(forward_elems_, b_, f_, trail);
      owned_envs_.push_back(std::move(joined.env));
      return Unify(joined.term, owned_envs_.back().get(), c_.term, c_.env,
                   trail);
    }
    // Split mode: for i in 0..n, A = first i elements, B = rest.
    while (split_i_ <= split_elems_.size()) {
      size_t i = split_i_++;
      Trail::Mark m = trail->mark();
      BuiltTerm prefix = BuildList(
          std::span<const TermRef>(split_elems_.data(), i), {}, f_, trail);
      BuiltTerm suffix = BuildList(
          std::span<const TermRef>(split_elems_.data() + i,
                                   split_elems_.size() - i),
          {}, f_, trail);
      owned_envs_.push_back(std::move(prefix.env));
      BindEnv* penv = owned_envs_.back().get();
      owned_envs_.push_back(std::move(suffix.env));
      BindEnv* senv = owned_envs_.back().get();
      if (Unify(prefix.term, penv, a_.term, a_.env, trail) &&
          Unify(suffix.term, senv, b_.term, b_.env, trail)) {
        return true;
      }
      trail->UndoTo(m);
    }
    return false;
  }

 private:
  enum class Mode { kForward, kSplit };
  TermRef a_, b_, c_;
  TermFactory* f_;
  bool init_ = false;
  bool done_ = false;
  Mode mode_ = Mode::kForward;
  std::vector<TermRef> forward_elems_;
  std::vector<TermRef> split_elems_;
  size_t split_i_ = 0;
  std::vector<std::unique_ptr<BindEnv>> owned_envs_;
};

/// member/2: enumerates elements of a proper list. Element refs share the
/// list's environment, so variable sharing is preserved.
class MemberGenerator : public BuiltinGenerator {
 public:
  MemberGenerator(std::span<const TermRef> args) : x_(args[0]), l_(args[1]) {}
  bool Next(Trail* trail) override {
    if (!init_) {
      init_ = true;
      bool proper;
      TermRef tail;
      elems_ = WalkList(l_, &proper, &tail);
      if (!proper && elems_.empty()) return false;
    }
    while (i_ < elems_.size()) {
      Trail::Mark m = trail->mark();
      const TermRef& e = elems_[i_++];
      if (Unify(x_.term, x_.env, e.term, e.env, trail)) return true;
      trail->UndoTo(m);
    }
    return false;
  }

 private:
  TermRef x_, l_;
  bool init_ = false;
  std::vector<TermRef> elems_;
  size_t i_ = 0;
};

StatusOr<std::unique_ptr<BuiltinGenerator>> LengthBuiltin(
    std::span<const TermRef> args, TermFactory* f) {
  TermRef l = args[0], n = args[1];
  return std::unique_ptr<BuiltinGenerator>(
      new OnceGenerator([l, n, f](Trail* trail) {
        bool proper;
        TermRef tail;
        std::vector<TermRef> elems = WalkList(l, &proper, &tail);
        if (!proper) return false;
        return Unify(f->MakeInt(static_cast<int64_t>(elems.size())), nullptr,
                     n.term, n.env, trail);
      }));
}

class BetweenGenerator : public BuiltinGenerator {
 public:
  BetweenGenerator(std::span<const TermRef> args, TermFactory* f)
      : lo_(args[0]), hi_(args[1]), x_(args[2]), f_(f) {}
  bool Next(Trail* trail) override {
    if (!init_) {
      init_ = true;
      TermRef lo = Deref(lo_.term, lo_.env);
      TermRef hi = Deref(hi_.term, hi_.env);
      if (lo.term->kind() != ArgKind::kInt ||
          hi.term->kind() != ArgKind::kInt) {
        return false;
      }
      cur_ = ArgCast<IntArg>(lo.term)->value();
      end_ = ArgCast<IntArg>(hi.term)->value();
    }
    while (cur_ <= end_) {
      Trail::Mark m = trail->mark();
      int64_t v = cur_++;
      if (Unify(f_->MakeInt(v), nullptr, x_.term, x_.env, trail)) return true;
      trail->UndoTo(m);
    }
    return false;
  }

 private:
  TermRef lo_, hi_, x_;
  TermFactory* f_;
  bool init_ = false;
  int64_t cur_ = 0, end_ = -1;
};

/// functor/3: functor(f(a,b), F, N) binds F=f, N=2; atoms have arity 0;
/// constants are their own functor. Decomposition mode only (the
/// construction mode needs N bound and builds f(_,...,_)).
StatusOr<std::unique_ptr<BuiltinGenerator>> FunctorBuiltin(
    std::span<const TermRef> args, TermFactory* f) {
  TermRef t = args[0], fn = args[1], n = args[2];
  return std::unique_ptr<BuiltinGenerator>(
      new OnceGenerator([t, fn, n, f](Trail* trail) {
        TermRef r = Deref(t.term, t.env);
        const Arg* name = nullptr;
        int64_t arity = 0;
        switch (r.term->kind()) {
          case ArgKind::kAtomOrFunctor: {
            const auto* fa = ArgCast<FunctorArg>(r.term);
            name = f->MakeAtom(fa->name());
            arity = fa->arity();
            break;
          }
          case ArgKind::kVariable:
            return false;  // construction mode unsupported
          default:
            name = r.term;  // constants: functor is the constant itself
            arity = 0;
        }
        return Unify(name, nullptr, fn.term, fn.env, trail) &&
               Unify(f->MakeInt(arity), nullptr, n.term, n.env, trail);
      }));
}

/// arg/3: arg(N, f(a,b), X) binds X to the Nth argument (1-based).
StatusOr<std::unique_ptr<BuiltinGenerator>> ArgBuiltin(
    std::span<const TermRef> args, TermFactory* f) {
  (void)f;
  TermRef n = args[0], t = args[1], x = args[2];
  return std::unique_ptr<BuiltinGenerator>(
      new OnceGenerator([n, t, x](Trail* trail) {
        TermRef rn = Deref(n.term, n.env);
        TermRef rt = Deref(t.term, t.env);
        if (rn.term->kind() != ArgKind::kInt ||
            rt.term->kind() != ArgKind::kAtomOrFunctor) {
          return false;
        }
        int64_t i = ArgCast<IntArg>(rn.term)->value();
        const auto* fa = ArgCast<FunctorArg>(rt.term);
        if (i < 1 || i > fa->arity()) return false;
        return Unify(fa->arg(static_cast<uint32_t>(i - 1)), rt.env, x.term,
                     x.env, trail);
      }));
}

/// sort/2: sorts a proper list by the total term order, removing
/// duplicates (set-style, as relations are sets).
StatusOr<std::unique_ptr<BuiltinGenerator>> SortBuiltin(
    std::span<const TermRef> args, TermFactory* f) {
  TermRef l = args[0], s = args[1];
  return std::unique_ptr<BuiltinGenerator>(
      new OnceGenerator([l, s, f](Trail* trail) {
        bool proper;
        TermRef tail;
        std::vector<TermRef> elems = WalkList(l, &proper, &tail);
        if (!proper) return false;
        VarRenamer ren;
        std::vector<const Arg*> resolved;
        resolved.reserve(elems.size());
        for (const TermRef& e : elems) {
          resolved.push_back(ResolveTerm(e.term, e.env, f, &ren));
        }
        std::sort(resolved.begin(), resolved.end(),
                  [](const Arg* a, const Arg* b) {
                    return CompareArgs(a, b) < 0;
                  });
        resolved.erase(std::unique(resolved.begin(), resolved.end(),
                                   [](const Arg* a, const Arg* b) {
                                     return CompareArgs(a, b) == 0;
                                   }),
                       resolved.end());
        const Arg* sorted = f->MakeList(resolved);
        return Unify(sorted, nullptr, s.term, s.env, trail);
      }));
}

StatusOr<std::unique_ptr<BuiltinGenerator>> WriteBuiltin(
    std::span<const TermRef> args, TermFactory* f, bool newline) {
  TermRef t = args[0];
  return std::unique_ptr<BuiltinGenerator>(
      new OnceGenerator([t, f, newline](Trail*) {
        VarRenamer ren;
        const Arg* resolved = ResolveTerm(t.term, t.env, f, &ren);
        std::cout << *resolved;
        if (newline) std::cout << "\n";
        return true;
      }));
}

}  // namespace

void BuiltinRegistry::RegisterStandard() {
  Register("=", 2, EqBuiltin);
  Register("\\=", 2, NeqBuiltin);
  for (const char* op : {"<", ">", "=<", ">="}) {
    std::string o = op;
    Register(o, 2,
             [o](std::span<const TermRef> args, TermFactory* f) {
               return CompareBuiltin(o, args, f);
             });
  }
  Register("append", 3,
           [](std::span<const TermRef> args, TermFactory* f)
               -> StatusOr<std::unique_ptr<BuiltinGenerator>> {
             return std::unique_ptr<BuiltinGenerator>(
                 new AppendGenerator(args, f));
           });
  Register("member", 2,
           [](std::span<const TermRef> args, TermFactory*)
               -> StatusOr<std::unique_ptr<BuiltinGenerator>> {
             return std::unique_ptr<BuiltinGenerator>(
                 new MemberGenerator(args));
           });
  Register("length", 2, LengthBuiltin);
  Register("between", 3,
           [](std::span<const TermRef> args, TermFactory* f)
               -> StatusOr<std::unique_ptr<BuiltinGenerator>> {
             return std::unique_ptr<BuiltinGenerator>(
                 new BetweenGenerator(args, f));
           });
  Register("functor", 3, FunctorBuiltin);
  Register("arg", 3, ArgBuiltin);
  Register("sort", 2, SortBuiltin);
  Register("write", 1,
           [](std::span<const TermRef> args, TermFactory* f) {
             return WriteBuiltin(args, f, false);
           });
  Register("writeln", 1,
           [](std::span<const TermRef> args, TermFactory* f) {
             return WriteBuiltin(args, f, true);
           });
}

}  // namespace coral
