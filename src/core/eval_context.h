// Copyright (c) 1993-style CORAL reproduction authors.
// Per-thread evaluation context: the query deadline. Sessions (and the
// server's request workers) install a deadline around each query; the
// evaluation loops poll CheckEvalDeadline at coarse intervals (roughly
// every ~1k join probes and once per fixpoint iteration) and unwind with
// kDeadlineExceeded. Thread-local so the single-user embedding pays one
// TLS load per poll and nothing else.

#ifndef CORAL_CORE_EVAL_CONTEXT_H_
#define CORAL_CORE_EVAL_CONTEXT_H_

#include <cstdint>

#include "src/util/status.h"

namespace coral {

/// Nanosecond reading of the monotonic clock used for deadlines.
int64_t EvalClockNowNs();

/// The calling thread's deadline (monotonic ns), or 0 when none is set.
int64_t ActiveEvalDeadlineNs();

/// True when a deadline is set and has passed.
bool EvalDeadlineExpired();

/// OK, or kDeadlineExceeded once the installed deadline has passed.
Status CheckEvalDeadline();

/// Installs a deadline `ms` milliseconds from now for the scope's
/// lifetime; restores the previous one on exit (nested scopes keep the
/// tighter effective deadline because checks compare absolute times —
/// an inner, later deadline cannot extend an outer one that already
/// expired, since the outer scope re-checks after the inner returns).
/// ms <= 0 installs nothing (the previous deadline stays in force).
class ScopedEvalDeadline {
 public:
  explicit ScopedEvalDeadline(int64_t ms);
  ~ScopedEvalDeadline();
  ScopedEvalDeadline(const ScopedEvalDeadline&) = delete;
  ScopedEvalDeadline& operator=(const ScopedEvalDeadline&) = delete;

 private:
  int64_t prev_;
  bool installed_;
};

}  // namespace coral

#endif  // CORAL_CORE_EVAL_CONTEXT_H_
