#include "src/core/eval_context.h"

#include <chrono>

namespace coral {

namespace {
thread_local int64_t g_deadline_ns = 0;
}  // namespace

int64_t EvalClockNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t ActiveEvalDeadlineNs() { return g_deadline_ns; }

bool EvalDeadlineExpired() {
  return g_deadline_ns != 0 && EvalClockNowNs() >= g_deadline_ns;
}

Status CheckEvalDeadline() {
  if (EvalDeadlineExpired()) {
    return Status::DeadlineExceeded("query deadline exceeded");
  }
  return Status::OK();
}

ScopedEvalDeadline::ScopedEvalDeadline(int64_t ms)
    : prev_(g_deadline_ns), installed_(ms > 0) {
  if (installed_) g_deadline_ns = EvalClockNowNs() + ms * 1'000'000;
}

ScopedEvalDeadline::~ScopedEvalDeadline() {
  if (installed_) g_deadline_ns = prev_;
}

}  // namespace coral
