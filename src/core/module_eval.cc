#include "src/core/module_eval.h"

#include <functional>
#include <set>

#include "src/core/database.h"
#include "src/core/ordered_search.h"
#include "src/obs/report.h"
#include "src/rewrite/existential.h"
#include "src/util/logging.h"

namespace coral {

StatusOr<std::unique_ptr<GoalSource>> ExternalResolver::Make(
    const Literal* lit, BindEnv* env) const {
  PredRef pred = lit->pred_ref();
  if (const BuiltinFn* fn = db_->builtins()->Find(pred.sym->name,
                                                  pred.arity)) {
    if (lit->negated) {
      return Status::Unsupported(
          "negation of builtin " + pred.ToString() +
          " is not supported; use the complementary builtin");
    }
    return std::unique_ptr<GoalSource>(
        new BuiltinGoalSource(lit, env, fn, db_->factory()));
  }
  if (Relation* rel = db_->FindBaseRelation(pred)) {
    if (lit->negated) {
      return std::unique_ptr<GoalSource>(
          new NegationGoalSource(lit, env, rel));
    }
    return std::unique_ptr<GoalSource>(
        new RelationGoalSource(lit, env, rel, 0, kMaxMark));
  }
  if (db_->modules()->Exports(pred)) {
    ModuleManager* mm = db_->modules();
    IteratorGoalSource::Opener opener =
        [mm, pred](std::span<const TermRef> args) {
          return mm->OpenQuery(pred, args);
        };
    if (lit->negated) {
      return std::unique_ptr<GoalSource>(
          new NegatedIteratorGoalSource(lit, env, std::move(opener)));
    }
    return std::unique_ptr<GoalSource>(
        new IteratorGoalSource(lit, env, std::move(opener)));
  }
  // Only exported predicates are visible outside their module (§5).
  const std::string owner = db_->modules()->LocalOwner(pred);
  if (!owner.empty()) {
    return Status::FailedPrecondition(
        "predicate " + pred.ToString() + " is local to module " + owner +
        " and not exported");
  }
  // Unknown predicate: the deductive-database convention is an empty
  // relation (created so later inserts are visible).
  Relation* rel = db_->GetOrCreateBaseRelation(pred);
  if (lit->negated) {
    return std::unique_ptr<GoalSource>(new NegationGoalSource(lit, env, rel));
  }
  return std::unique_ptr<GoalSource>(
      new RelationGoalSource(lit, env, rel, 0, kMaxMark));
}

MaterializedInstance::MaterializedInstance(const RewrittenProgram* prog,
                                           const ModuleDecl* decl,
                                           Database* db)
    : prog_(prog), decl_(decl), db_(db) {}

MaterializedInstance::~MaterializedInstance() = default;

Relation* MaterializedInstance::internal(const PredRef& pred) const {
  auto it = internal_.find(pred);
  return it == internal_.end() ? nullptr : it->second.get();
}

Relation* MaterializedInstance::staging(const PredRef& magic_pred) const {
  auto it = staging_.find(magic_pred);
  return it == staging_.end() ? nullptr : it->second.get();
}

Relation* MaterializedInstance::answer_relation() const {
  return internal(prog_->answer_pred);
}

BindEnv* MaterializedInstance::EnvFor(size_t scc_idx, bool once, size_t idx,
                                      uint32_t var_count) {
  auto& table = once ? once_envs_ : version_envs_;
  auto& slot = table[scc_idx][idx];
  if (slot == nullptr) {
    slot = std::make_unique<BindEnv>(var_count);
  } else {
    slot->EnsureSize(var_count);
    slot->ClearAll();
  }
  return slot.get();
}

const AggHeadSpec* MaterializedInstance::AggSpecFor(uint32_t rule_index) {
  auto it = agg_specs_.find(rule_index);
  if (it == agg_specs_.end()) {
    it = agg_specs_
             .emplace(rule_index,
                      AnalyzeAggHead(prog_->rules[rule_index].head))
             .first;
  }
  return &it->second;
}

Status MaterializedInstance::Init() {
  // Structural mutation of shared base relations (attaching indexes and
  // aggregate selections, creating referenced relations) is a commit:
  // exclude concurrent readers' lazy snapshot publication for the
  // duration. Ranks: commit (4) < module mu_ (6) < base map (8), so the
  // Exports/LocalOwner and GetOrCreateBaseRelation calls below nest fine.
  WriterLock structural(db_->commit_mutex());
  // Internal relations: every rule head, plus done relations for Ordered
  // Search, plus staging relations for magic predicates under OS.
  for (const Rule& r : prog_->rules) {
    PredRef head = r.head.pred_ref();
    if (internal_.count(head)) continue;
    internal_.emplace(head, std::make_unique<HashRelation>(
                                head.sym->name, head.arity));
  }
  // The answer predicate may have no rules (e.g. empty module); ensure it.
  if (!internal_.count(prog_->answer_pred)) {
    internal_.emplace(prog_->answer_pred,
                      std::make_unique<HashRelation>(
                          prog_->answer_pred.sym->name,
                          prog_->answer_pred.arity));
  }
  if (prog_->uses_magic && !internal_.count(prog_->seed_pred)) {
    internal_.emplace(prog_->seed_pred,
                      std::make_unique<HashRelation>(
                          prog_->seed_pred.sym->name, prog_->seed_pred.arity));
  }
  for (const auto& [magic, done] : prog_->done_of) {
    if (!internal_.count(done)) {
      internal_.emplace(done, std::make_unique<HashRelation>(done.sym->name,
                                                             done.arity));
    }
  }
  if (prog_->ordered_search) {
    for (const auto& [adorned, magic] : prog_->magic_of) {
      if (!internal_.count(magic)) {
        internal_.emplace(magic, std::make_unique<HashRelation>(
                                     magic.sym->name, magic.arity));
      }
      if (!staging_.count(magic)) {
        auto rel = std::make_unique<HashRelation>(
            "stage$" + magic.sym->name, magic.arity);
        rel->set_multiset(true);  // regenerations must be observable
        staging_.emplace(magic, std::move(rel));
      }
    }
  }

  // Multiset semantics (paper §4.2): duplicate checks only on magic.
  for (Symbol ms : decl_->multiset_preds) {
    for (auto& [pred, rel] : internal_) {
      auto oit = prog_->original_of.find(pred);
      Symbol orig = oit != prog_->original_of.end() ? oit->second.sym
                                                    : pred.sym;
      if (orig == ms) rel->set_multiset(true);
    }
  }

  // Aggregate selections (paper §5.5.2) attach to every internal relation
  // whose original predicate matches the declaration; declarations naming
  // a base (module-external) predicate attach to the database relation.
  for (const AggSelDecl& decl : decl_->agg_selections) {
    bool matched_internal = false;
    for (auto& [pred, rel] : internal_) {
      auto oit = prog_->original_of.find(pred);
      Symbol orig = oit != prog_->original_of.end() ? oit->second.sym
                                                    : pred.sym;
      if (orig != decl.pred || pred.arity != decl.pattern.size()) continue;
      matched_internal = true;
      rel->AddAggregateSelection(std::make_unique<AggregateSelection>(
          decl.kind, decl.pattern, decl.var_count, decl.group_args,
          decl.agg_arg));
    }
    if (!matched_internal) {
      PredRef base{decl.pred, static_cast<uint32_t>(decl.pattern.size())};
      db_->GetOrCreateBaseRelation(base)->AddAggregateSelection(
          std::make_unique<AggregateSelection>(decl.kind, decl.pattern,
                                               decl.var_count,
                                               decl.group_args,
                                               decl.agg_arg));
    }
  }

  // Declared indices (paper §5.5.1), same internal-then-base resolution.
  for (const IndexDecl& decl : decl_->indexes) {
    bool matched_internal = false;
    for (auto& [pred, rel] : internal_) {
      auto oit = prog_->original_of.find(pred);
      Symbol orig = oit != prog_->original_of.end() ? oit->second.sym
                                                    : pred.sym;
      if (orig != decl.pred || pred.arity != decl.pattern.size()) continue;
      matched_internal = true;
      if (decl.argument_form) {
        rel->AddArgumentIndex(decl.cols);
      } else {
        rel->AddPatternIndex(decl.pattern, decl.var_count, decl.key_slots);
      }
    }
    if (!matched_internal) {
      PredRef base{decl.pred, static_cast<uint32_t>(decl.pattern.size())};
      auto* rel = dynamic_cast<HashRelation*>(
          db_->GetOrCreateBaseRelation(base));
      if (rel != nullptr) {
        if (decl.argument_form) {
          rel->AddArgumentIndex(decl.cols);
        } else {
          rel->AddPatternIndex(decl.pattern, decl.var_count,
                               decl.key_slots);
        }
      }
    }
  }

  // Optimizer-selected indices (paper §4.2 index selection; §5.3
  // "generates annotations to create any indexes that may be useful"):
  // the rewriter planned one argument index per (relation, bound column
  // set) probe; apply each to the internal relation, or to the base
  // relation when the predicate resolves outside the module. Full-width
  // indexes are kept too: they serve fully-bound lookups (negation as
  // set-difference probes the whole tuple).
  for (const PlannedIndex& pi : prog_->index_plan) {
    HashRelation* target = nullptr;
    auto it = internal_.find(pi.pred);
    if (it != internal_.end()) {
      target = it->second.get();
    } else if (db_->builtins()->Find(pi.pred.sym->name, pi.pred.arity) ==
               nullptr &&
               !db_->modules()->Exports(pi.pred) &&
               db_->modules()->LocalOwner(pi.pred).empty()) {
      target = dynamic_cast<HashRelation*>(
          db_->GetOrCreateBaseRelation(pi.pred));
    }
    if (target != nullptr) target->AddArgumentIndex(pi.cols);
  }
  // Index the answer relation on the query form's bound positions so
  // callers' filtered scans are cheap.
  if (!prog_->bound_positions.empty() &&
      prog_->bound_positions.size() < prog_->answer_pred.arity) {
    auto* rel = dynamic_cast<HashRelation*>(answer_relation());
    if (rel != nullptr) rel->AddArgumentIndex(prog_->bound_positions);
  }

  // Parallel eligibility. The parallel engine covers plain materialized
  // BSN/Naive evaluation; everything else falls back to the sequential
  // engine: Ordered Search (staging interception), @explain (derivation
  // recording), PSN (relies on immediate availability of facts derived
  // earlier in the same pass), inter-module calls (nested evaluation),
  // write/writeln (output order), and predicates local to other modules
  // (diagnosed sequentially).
  parallel_safe_ = !prog_->ordered_search && !decl_->explain &&
                   decl_->fixpoint != FixpointKind::kPredicateSemiNaive;
  for (const Rule& r : prog_->rules) {
    if (!parallel_safe_) break;
    for (const Literal& lit : r.body) {
      PredRef pred = lit.pred_ref();
      if (internal_.count(pred)) continue;
      const std::string& name = pred.sym->name;
      if (db_->builtins()->Find(name, pred.arity) != nullptr) {
        if (name == "write" || name == "writeln") parallel_safe_ = false;
        continue;
      }
      if (db_->modules()->Exports(pred) ||
          !db_->modules()->LocalOwner(pred).empty()) {
        parallel_safe_ = false;
        continue;
      }
      // Plain base relation: create it now, while still single-threaded,
      // so workers never race through GetOrCreateBaseRelation.
      db_->GetOrCreateBaseRelation(pred);
    }
  }

  size_t n_sccs = prog_->seminaive.sccs.size();
  prev_marks_.resize(n_sccs);
  psn_marks_.resize(n_sccs);
  version_envs_.resize(n_sccs);
  once_envs_.resize(n_sccs);
  once_done_.assign(n_sccs, false);
  for (size_t s = 0; s < n_sccs; ++s) {
    psn_marks_[s].assign(prog_->seminaive.sccs[s].versions.size(), 0);
    version_envs_[s].resize(prog_->seminaive.sccs[s].versions.size());
    once_envs_[s].resize(prog_->seminaive.sccs[s].once.size());
  }

  // Join bytecode: bind compiled rule versions to this activation's
  // relations. Gated here (not at compile time) so set_use_vm takes
  // effect at the next activation without recompiling the form.
  if (db_->use_vm() && vm_module_ != nullptr && !decl_->no_vm) {
    BindVmPrograms();
  }

  // Profiling: bind this activation to the module's profile. The rule
  // slots are created here, while single-threaded; counters aggregate
  // across activations under the module's name.
  if (decl_->profile || db_->profiling()) {
    profile_ = db_->stats()->GetOrCreate(decl_->name);
    profile_->EnsureRules(prog_->rules.size(), [this](size_t i) {
      return prog_->rules[i].ToString();
    });
    profile_->RecordActivation();
  }
  return Status::OK();
}

void MaterializedInstance::BindVmPrograms() {
  size_t n_sccs = prog_->seminaive.sccs.size();
  if (vm_module_->sccs.size() != n_sccs) return;  // stale bytecode
  vm_versions_.resize(n_sccs);
  vm_once_.resize(n_sccs);

  // Binds one compiled rule to relations, or leaves it null when the
  // run-time shape disagrees with what the compiler assumed: a body
  // predicate that now resolves to a builtin or another module's export
  // (the registries may have changed since the form compiled), or a head
  // that is not a plain internal set relation. The interpreter restores
  // full semantics for such rules; on mid-rule fallback the tuples the VM
  // already inserted must be harmless to re-derive, hence the multiset
  // and aggregate-selection head exclusions.
  auto bind = [&](const vm::RuleProgram* rp) {
    VmBoundRule b;
    if (rp == nullptr) return b;
    auto* head = dynamic_cast<HashRelation*>(internal(rp->head_pred));
    if (head == nullptr || head->multiset() || !head->selections().empty()) {
      db_->vm_counters()->bind_fallbacks.fetch_add(1,
                                                  std::memory_order_relaxed);
      return b;
    }
    std::vector<Relation*> rels;
    std::vector<HashRelation*> hash_rels;
    for (const PredRef& pred : rp->preds) {
      Relation* rel = internal(pred);
      if (rel == nullptr) {
        if (db_->builtins()->Find(pred.sym->name, pred.arity) != nullptr ||
            db_->modules()->Exports(pred) ||
            !db_->modules()->LocalOwner(pred).empty()) {
          db_->vm_counters()->bind_fallbacks.fetch_add(
              1, std::memory_order_relaxed);
          return b;
        }
        rel = db_->GetOrCreateBaseRelation(pred);
      }
      rels.push_back(rel);
      hash_rels.push_back(dynamic_cast<HashRelation*>(rel));
    }
    b.prog = rp;
    b.rels = std::move(rels);
    b.hash_rels = std::move(hash_rels);
    b.head = head;
    return b;
  };

  for (size_t s = 0; s < n_sccs; ++s) {
    const vm::SccPrograms& sp = vm_module_->sccs[s];
    vm_versions_[s].resize(prog_->seminaive.sccs[s].versions.size());
    vm_once_[s].resize(prog_->seminaive.sccs[s].once.size());
    for (size_t i = 0; i < vm_versions_[s].size() && i < sp.versions.size();
         ++i) {
      vm_versions_[s][i] = bind(sp.versions[i].get());
      vm_active_ = vm_active_ || vm_versions_[s][i].prog != nullptr;
    }
    for (size_t i = 0; i < vm_once_[s].size() && i < sp.once.size(); ++i) {
      vm_once_[s][i] = bind(sp.once[i].get());
      vm_active_ = vm_active_ || vm_once_[s][i].prog != nullptr;
    }
  }
}

const MaterializedInstance::VmBoundRule* MaterializedInstance::VmRuleFor(
    size_t scc_idx, bool once, size_t version_idx) const {
  const auto& table = once ? vm_once_ : vm_versions_;
  if (scc_idx >= table.size() || version_idx >= table[scc_idx].size()) {
    return nullptr;
  }
  const VmBoundRule& b = table[scc_idx][version_idx];
  return b.prog == nullptr ? nullptr : &b;
}

size_t MaterializedInstance::VersionIndex(size_t scc_idx,
                                          const RuleVersion& v) const {
  const SccPlan& plan = prog_->seminaive.sccs[scc_idx];
  if (&v >= plan.versions.data() &&
      &v < plan.versions.data() + plan.versions.size()) {
    return static_cast<size_t>(&v - plan.versions.data());
  }
  CORAL_DCHECK(&v >= plan.once.data() &&
               &v < plan.once.data() + plan.once.size());
  return static_cast<size_t>(&v - plan.once.data());
}

std::string MaterializedInstance::DisplayName(const PredRef& pred) const {
  auto it = prog_->original_of.find(pred);
  return it != prog_->original_of.end() ? it->second.sym->name
                                        : pred.sym->name;
}

Status MaterializedInstance::Seed(std::span<const TermRef> query_args) {
  if (!prog_->uses_magic) return Status::OK();
  std::vector<TermRef> bound;
  for (uint32_t pos : prog_->bound_positions) {
    CORAL_CHECK(pos < query_args.size());
    bound.push_back(query_args[pos]);
  }
  const Tuple* seed = ResolveTuple(bound, db_->factory());
  if (prog_->ordered_search) {
    auto dit = prog_->done_of.find(prog_->seed_pred);
    Relation* done =
        dit != prog_->done_of.end() ? internal(dit->second) : nullptr;
    if (done != nullptr && done->Contains(seed)) return Status::OK();
    Relation* magic = internal(prog_->seed_pred);
    if (magic != nullptr && magic->Contains(seed)) return Status::OK();
    pending_seeds_.push_back(seed);
    complete_ = false;
    return Status::OK();
  }
  Relation* magic = internal(prog_->seed_pred);
  CORAL_CHECK(magic != nullptr);
  if (magic->Insert(seed)) {
    // Engine-fed tuple: pinned against maintenance deletion, and the
    // resumed evaluation will derive tuples the support counts missed.
    engine_seeds_[prog_->seed_pred].insert(seed);
    counts_valid_ = false;
    if (complete_) {
      // Save-module resumption: new subgoal, continue incrementally.
      complete_ = false;
      cur_scc_ = 0;
    }
  }
  return Status::OK();
}

Status MaterializedInstance::RunStep(bool* done) {
  if (complete_) {
    *done = true;
    return Status::OK();
  }
  if (in_step_) {
    return Status::FailedPrecondition(
        "recursive invocation of module " + decl_->name +
        " during its own evaluation (disallowed for save modules, "
        "paper §5.4.2)");
  }
  in_step_ = true;
  // Sinks may attach between steps (a save module outlives a trace
  // session); re-fetch here, at a serial point.
  trace_ = db_->trace_sink();
  Status st;
  if (prog_->ordered_search) {
    OrderedSearchEval os(this);
    st = os.Run();
    complete_ = true;
  } else {
    size_t n = prog_->seminaive.sccs.size();
    if (cur_scc_ >= n) {
      complete_ = true;
    } else if (!once_done_[cur_scc_]) {
      st = RunOnceRules(cur_scc_);
      once_done_[cur_scc_] = true;
    } else {
      bool changed = false;
      st = RunIterationObserved(cur_scc_, &changed);
      ++stats_.iterations;
      if (st.ok() && !changed) {
        ++cur_scc_;
        if (cur_scc_ >= n) complete_ = true;
      }
    }
  }
  if (complete_ && trace_ != nullptr) {
    // This call made the activation complete (already-complete instances
    // return at the top).
    obs::TraceEvent ev;
    ev.kind = obs::TraceKind::kModuleDone;
    ev.module = decl_->name;
    ev.iter = stats_.iterations;
    ev.count = stats_.inserts;
    trace_->Emit(ev);
  }
  in_step_ = false;
  *done = complete_;
  return st;
}

std::string MaterializedInstance::Explain(const Tuple* fact) const {
  // Pretty name: strip the adornment of rewritten predicates.
  auto display = [&](const PredRef& pred) { return DisplayName(pred); };
  // (pred, tuple) -> first recorded derivation.
  auto find = [&](const PredRef& pred,
                  const Tuple* t) -> const Derivation* {
    for (const Derivation& d : derivations_) {
      if (d.head_pred == pred && (d.head == t || d.head->Equals(*t))) {
        return &d;
      }
    }
    return nullptr;
  };

  std::string out;
  // Depth-first expansion with cycle guard.
  std::vector<const Tuple*> path;
  std::function<void(const PredRef&, const Tuple*, int)> expand =
      [&](const PredRef& pred, const Tuple* t, int depth) {
        out.append(static_cast<size_t>(depth) * 2, ' ');
        out += display(pred) + t->ToString();
        for (const Tuple* seen : path) {
          if (seen == t) {
            out += "  [cyclic]\n";
            return;
          }
        }
        const Derivation* d = find(pred, t);
        if (d == nullptr) {
          out += "  [base fact]\n";
          return;
        }
        out += "  <- rule " + std::to_string(d->rule_index) + ": " +
               prog_->rules[d->rule_index].ToString() + "\n";
        path.push_back(t);
        for (const auto& [bpred, btuple] : d->body) {
          expand(bpred, btuple, depth + 1);
        }
        path.pop_back();
      };

  // The fact may live under any head predicate whose original name and
  // arity match; try exact adorned preds first, then originals.
  for (const Derivation& d : derivations_) {
    if ((d.head == fact || d.head->Equals(*fact))) {
      expand(d.head_pred, fact, 0);
      // Profiling footer: how much work the module did overall, so an
      // explanation also answers "and what did it cost?".
      if (profile_ != nullptr) {
        out += "--\n";
        out += obs::RenderModuleProfile(*profile_);
      }
      return out;
    }
  }
  return "no recorded derivation for " + fact->ToString() +
         " (is @explain set and the fact derived?)\n";
}

Status MaterializedInstance::RunToCompletion() {
  bool done = false;
  while (!done) {
    CORAL_RETURN_IF_ERROR(RunStep(&done));
  }
  return Status::OK();
}

LazyAnswerIterator::LazyAnswerIterator(
    std::shared_ptr<MaterializedInstance> inst, const Tuple* goal)
    : inst_(std::move(inst)), goal_(goal) {
  goal_env_ = std::make_unique<BindEnv>(goal_->var_count());
}

const Tuple* LazyAnswerIterator::Next() {
  while (true) {
    if (batch_ != nullptr) {
      if (const Tuple* t = batch_->Next()) return t;
      batch_.reset();
    }
    Relation* rel = inst_->answer_relation();
    Mark cur = rel->Snapshot();
    if (cur > seen_) {
      std::vector<TermRef> refs;
      refs.reserve(goal_->arity());
      for (uint32_t i = 0; i < goal_->arity(); ++i) {
        refs.push_back({goal_->arg(i), goal_env_.get()});
      }
      goal_env_->ClearAll();
      batch_ = rel->Select(refs, seen_, cur);
      seen_ = cur;
      continue;
    }
    if (done_) return nullptr;
    Status st = inst_->RunStep(&done_);
    if (!st.ok()) {
      status_ = st;
      return nullptr;
    }
  }
}

}  // namespace coral
