// Copyright (c) 1993-style CORAL reproduction authors.
// Session-oriented public API (paper §6 embedding, extended to the
// multi-client server of docs/SERVER.md): a Session is the handle through
// which one client evaluates queries against a shared Database. Each
// session carries
//
//   - a snapshot context: queries run against an immutable epoch view of
//     the base relations, so concurrent writer commits never produce torn
//     reads (readers see every commit boundary state, never a partial
//     one);
//   - a deadline: per-query evaluation budget in milliseconds, enforced
//     cooperatively inside the join and fixpoint loops
//     (Status kDeadlineExceeded);
//   - named bindings: `$name` placeholders in query text substituted
//     before parsing, so clients can parameterize queries without string
//     concatenation.
//
// Thread-safety contract: a Session is confined to one thread at a time
// (clients are serialized by the server's per-connection queue); distinct
// Sessions over the same Database may run queries concurrently with each
// other and with writer commits (Consult / InsertFact / DeleteFacts).
// Constructing the first Session permanently switches the Database's
// shared term factory and symbol table into locked mode.

#ifndef CORAL_CORE_SESSION_H_
#define CORAL_CORE_SESSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/database.h"

namespace coral {

class Session {
 public:
  /// Binds the session to `db` (not owned; must outlive the session) and
  /// engages concurrent-sessions mode on it. `deadline_ms` <= 0 means no
  /// deadline.
  explicit Session(Database* db, int64_t deadline_ms = 0);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Evaluates one query against this session's snapshot, applying
  /// `$name` bindings, the session deadline, and snapshot isolation. The
  /// snapshot is acquired lazily on first use and kept until Refresh().
  StatusOr<QueryResult> EvalQuery(const std::string& text);

  /// Writer entry point: commits program text (facts, rules, modules,
  /// annotations) to the shared database, then refreshes this session's
  /// snapshot so its own writes are visible to subsequent queries. Other
  /// sessions keep their older snapshots until they refresh or re-acquire.
  StatusOr<std::vector<Query>> Consult(std::string_view text);

  /// Writer entry point for bulk fact loading; equivalent to Consult with
  /// fact-only text but reports the number of new facts inserted.
  StatusOr<size_t> LoadFacts(std::string_view text);

  /// Writer entry point for incremental updates (docs/MAINTENANCE.md):
  /// `text` is a sequence of lines, each `+fact.` (insert) or `-fact.`
  /// (delete; the fact may contain variables and deletes every stored
  /// fact it subsumes). Blank lines and `%` comments are skipped. The
  /// batch commits atomically; affected saved module instances are
  /// maintained in place where possible and invalidated otherwise, and
  /// the session snapshot is refreshed.
  StatusOr<UpdateResult> ApplyUpdate(std::string_view text);

  /// Drops the cached snapshot; the next query sees all commits made so
  /// far by any session.
  void Refresh() { view_.reset(); }

  /// Sets `$name` := `term_text` for subsequent queries; re-binding
  /// replaces. Binding names are identifiers ([A-Za-z_][A-Za-z0-9_]*).
  void Bind(const std::string& name, const std::string& term_text) {
    bindings_[name] = term_text;
  }
  void ClearBinding(const std::string& name) { bindings_.erase(name); }
  void ClearBindings() { bindings_.clear(); }

  void set_deadline_ms(int64_t ms) { deadline_ms_ = ms; }
  int64_t deadline_ms() const { return deadline_ms_; }

  /// Epoch of the snapshot this session currently reads (0 before the
  /// first query / after Refresh).
  uint64_t epoch() const { return view_ == nullptr ? 0 : view_->epoch; }

  Database* db() const { return db_; }

 private:
  /// Replaces `$name` placeholders with bound term text; errors on an
  /// unbound placeholder.
  StatusOr<std::string> Substitute(const std::string& text) const;

  Database* db_;
  int64_t deadline_ms_;
  std::shared_ptr<const ReadView> view_;
  std::map<std::string, std::string> bindings_;
};

}  // namespace coral

#endif  // CORAL_CORE_SESSION_H_
