#include "src/core/pipeline.h"

#include "src/core/database.h"
#include "src/core/module_eval.h"
#include "src/rewrite/seminaive.h"
#include "src/util/logging.h"

namespace coral {

PipelinedModule::PipelinedModule(const ModuleDecl* decl, Database* db)
    : decl_(decl), db_(db) {
  // A pipelined module is stored as a list of predicates, each with the
  // rules defining it in the order they occur (paper §5.1).
  for (const Rule& r : decl_->rules) {
    rules_[r.head.pred_ref()].push_back(&r);
  }
}

bool PipelinedModule::Defines(const PredRef& pred) const {
  return rules_.count(pred) > 0;
}

PipelinedPredScan::PipelinedPredScan(const PipelinedModule* mod,
                                     const Literal* lit, BindEnv* env,
                                     Trail* trail, int depth)
    : mod_(mod), lit_(lit), env_(env), trail_(trail), depth_(depth) {
  if (depth_ > PipelinedModule::kMaxDepth) {
    status_ = Status::FailedPrecondition(
        "pipelined evaluation exceeded the maximum proof depth (cyclic "
        "data or unbounded recursion; consider @materialized)");
  }
}

PipelinedPredScan::~PipelinedPredScan() = default;

void PipelinedPredScan::DoReset() {
  cursor_.reset();
  active_rule_ = nullptr;
  rule_idx_ = 0;
}

void PipelinedPredScan::Abandon() {
  // Undo everything this scan bound (head unifications and body bindings
  // of all nesting levels happened after base_) and clear the suspension.
  GoalSource::Abandon();
  cursor_.reset();
  active_rule_ = nullptr;
  rule_idx_ = 0;
}

bool PipelinedPredScan::ActivateRule(const Rule* rule) {
  if (auto* profile = mod_->profile_.load(std::memory_order_acquire)) {
    size_t idx = static_cast<size_t>(rule - mod_->decl_->rules.data());
    profile->rule(idx).applications.fetch_add(1, std::memory_order_relaxed);
  }
  rule_mark_ = trail_->mark();
  if (rule_env_ == nullptr) {
    rule_env_ = std::make_unique<BindEnv>(rule->var_count);
  } else {
    rule_env_->EnsureSize(rule->var_count);
    rule_env_->ClearAll();
  }
  // Unify the goal with the rule head.
  CORAL_CHECK_EQ(rule->head.args.size(), lit_->args.size());
  for (size_t i = 0; i < lit_->args.size(); ++i) {
    if (!Unify(lit_->args[i], env_, rule->head.args[i], rule_env_.get(),
               trail_)) {
      trail_->UndoTo(rule_mark_);
      return false;
    }
  }
  // Build the body cursor; local derived predicates expand into nested
  // pipelined scans (the recursive calls of paper §5.2).
  std::vector<std::unique_ptr<GoalSource>> sources;
  sources.reserve(rule->body.size());
  for (const Literal& bl : rule->body) {
    if (mod_->Defines(bl.pred_ref())) {
      if (bl.negated) {
        // Negation as failure over the local predicate: a fresh nested
        // scan probes for a witness (Prolog-style NAF, paper §5.2 treats
        // pipelining as guaranteeing a top-down evaluation order).
        class NafSource : public GoalSource {
         public:
          NafSource(const PipelinedModule* mod, const Literal* lit,
                    BindEnv* env, Trail* trail, int depth)
              : mod_(mod), lit_(lit), env_(env), probe_trail_(trail),
                depth_(depth) {}
          bool Next(Trail* trail) override {
            trail->UndoTo(base_);
            if (fired_) return false;
            fired_ = true;
            PipelinedPredScan probe(mod_, lit_, env_, probe_trail_,
                                    depth_ + 1);
            probe.Reset(probe_trail_);
            bool found = probe.Next(trail);
            status_ = probe.status();
            trail->UndoTo(base_);
            return status_.ok() && !found;
          }
          const Status& status() const override { return status_; }

         protected:
          void DoReset() override { fired_ = false; }

         private:
          const PipelinedModule* mod_;
          const Literal* lit_;
          BindEnv* env_;
          Trail* probe_trail_;
          int depth_;
          bool fired_ = false;
          Status status_;
        };
        sources.push_back(std::make_unique<NafSource>(
            mod_, &bl, rule_env_.get(), trail_, depth_));
      } else {
        sources.push_back(std::make_unique<PipelinedPredScan>(
            mod_, &bl, rule_env_.get(), trail_, depth_ + 1));
      }
      continue;
    }
    auto src = ExternalResolver(mod_->db_).Make(&bl, rule_env_.get());
    if (!src.ok()) {
      status_ = src.status();
      trail_->UndoTo(rule_mark_);
      return false;
    }
    sources.push_back(std::move(src).value());
  }
  cursor_ = std::make_unique<RuleCursor>(
      std::move(sources), ComputeBacktrackPoints(*rule),
      mod_->decl_->intelligent_backtracking, trail_);
  active_rule_ = rule;
  return true;
}

bool PipelinedPredScan::Next(Trail* trail) {
  CORAL_DCHECK(trail == trail_);
  (void)trail;  // the scan drives its own (identical) trail
  if (!status_.ok()) return false;
  auto it = mod_->rules_.find(lit_->pred_ref());
  if (it == mod_->rules_.end()) return false;
  const std::vector<const Rule*>& rules = it->second;

  while (true) {
    if (active_rule_ != nullptr) {
      if (cursor_->Next()) {
        if (auto* profile =
                mod_->profile_.load(std::memory_order_acquire)) {
          size_t idx = static_cast<size_t>(active_rule_ -
                                           mod_->decl_->rules.data());
          obs::RuleStats& rs = profile->rule(idx);
          rs.solutions.fetch_add(1, std::memory_order_relaxed);
          rs.derived.fetch_add(1, std::memory_order_relaxed);
        }
        return true;
      }
      if (!cursor_->status().ok()) status_ = cursor_->status();
      if (auto* profile = mod_->profile_.load(std::memory_order_acquire)) {
        size_t idx = static_cast<size_t>(active_rule_ -
                                         mod_->decl_->rules.data());
        profile->rule(idx).probes.fetch_add(cursor_->probes(),
                                            std::memory_order_relaxed);
      }
      cursor_->UndoAll();
      cursor_.reset();
      trail_->UndoTo(rule_mark_);
      active_rule_ = nullptr;
      if (!status_.ok()) return false;
    }
    if (rule_idx_ >= rules.size()) return false;
    const Rule* rule = rules[rule_idx_++];
    if (!ActivateRule(rule)) continue;  // head unification failed
  }
}

StatusOr<std::unique_ptr<TupleIterator>> PipelinedModule::OpenQuery(
    const PredRef& pred, std::span<const TermRef> args) const {
  // Materialize the goal into callee scope: the caller unifies returned
  // tuples itself (module interface, paper §5.6).
  class PipelinedAnswerIterator : public TupleIterator {
   public:
    PipelinedAnswerIterator(const PipelinedModule* mod, const PredRef& pred,
                            const Tuple* goal)
        : goal_(goal), env_(std::make_unique<BindEnv>(goal->var_count())) {
      lit_.pred = pred.sym;
      lit_.args.assign(goal_->args().begin(), goal_->args().end());
      scan_ = std::make_unique<PipelinedPredScan>(mod, &lit_, env_.get(),
                                                  &trail_, 0);
      scan_->Reset(&trail_);
    }
    const Status& status() const override { return scan_->status(); }
    const Tuple* Next() override {
      if (!scan_->Next(&trail_)) return nullptr;
      std::vector<TermRef> refs;
      refs.reserve(lit_.args.size());
      for (const Arg* a : lit_.args) refs.push_back({a, env_.get()});
      // Resolve under current bindings; the scan stays frozen until the
      // next request (paper §5.2).
      factory_refs_.clear();
      return ResolveTuple(refs, factory_);
    }
    void set_factory(TermFactory* f) { factory_ = f; }

   private:
    const Tuple* goal_;
    std::unique_ptr<BindEnv> env_;
    Literal lit_;
    Trail trail_;
    std::unique_ptr<PipelinedPredScan> scan_;
    TermFactory* factory_ = nullptr;
    std::vector<TermRef> factory_refs_;
  };

  // Refresh the profile binding: the global switch may have been toggled
  // since the previous call. Registry entries are never destroyed while
  // the database lives, so a stale pointer read by a concurrent scan
  // still lands on a valid profile.
  obs::ModuleProfile* profile = nullptr;
  if (decl_->profile || db_->profiling()) {
    profile = db_->stats()->GetOrCreate(decl_->name);
    profile->EnsureRules(decl_->rules.size(), [this](size_t i) {
      return decl_->rules[i].ToString();
    });
    profile->RecordActivation();
  }
  profile_.store(profile, std::memory_order_release);

  const Tuple* goal = ResolveTuple(args, db_->factory());
  auto it = std::make_unique<PipelinedAnswerIterator>(this, pred, goal);
  it->set_factory(db_->factory());
  return std::unique_ptr<TupleIterator>(std::move(it));
}

}  // namespace coral
