// Copyright (c) 1993-style CORAL reproduction authors.

#include "src/vm/vm.h"

#include <memory>
#include <vector>

#include "src/core/builtins.h"
#include "src/rel/partition.h"

namespace coral::vm {

namespace {

class Executor {
 public:
  Executor(const RunInput& in, TupleSink* sink, RunStats* st)
      : in_(in),
        prog_(*in.prog),
        sink_(sink),
        st_(st),
        regs_(prog_.nregs, nullptr),
        cand_(prog_.levels.size()),
        head_buf_(prog_.head.size(), nullptr) {}

  RunResult Run() {
    return RunLevel(0) ? RunResult::kOk : RunResult::kFallback;
  }

 private:
  const Arg* OperandValue(const Operand& o) const {
    return o.is_const ? prog_.consts[o.index] : regs_[o.index];
  }

  /// Mirrors the interpreter's comparison builtins exactly: arithmetic
  /// faults fail the goal silently; `=`/`\=` on ground canonical terms
  /// are pointer (in)equality; the others use the total term order.
  bool EvalTest(const Instr& c) {
    auto ea = EvalArith(OperandValue(c.a), nullptr, in_.factory);
    if (!ea.ok()) return false;
    auto eb = EvalArith(OperandValue(c.b), nullptr, in_.factory);
    if (!eb.ok()) return false;
    const Arg* ta = ea->term;
    const Arg* tb = eb->term;
    switch (c.cmp) {
      case CmpOp::kEq: return ta == tb;
      case CmpOp::kNe: return ta != tb;
      case CmpOp::kLt: return CompareArgs(ta, tb) < 0;
      case CmpOp::kGt: return CompareArgs(ta, tb) > 0;
      case CmpOp::kLe: return CompareArgs(ta, tb) <= 0;
      case CmpOp::kGe: return CompareArgs(ta, tb) >= 0;
    }
    return false;
  }

  /// One candidate at level `li`. Returns false only on fallback-abort;
  /// a failed check just skips the candidate.
  bool Step(const Level& lv, size_t li, const Tuple* t, bool part_here) {
    ++st_->tuples;
    if (!t->IsGround()) return false;
    if (part_here &&
        PartitionKey(t, in_.part_col) % in_.part_count != in_.part_index) {
      return true;
    }
    const uint32_t end = lv.first_check + lv.num_checks;
    for (uint32_t i = lv.first_check; i < end; ++i) {
      const Instr& c = prog_.code[i];
      if (c.op == Op::kUnifyArg) {
        ++st_->ops.unify_arg;
        const Arg* v = t->arg(c.col);
        switch (c.mode) {
          case UnifyMode::kMatchConst:
            if (v != prog_.consts[c.a.index]) return true;
            break;
          case UnifyMode::kLoadReg:
            regs_[c.a.index] = v;
            break;
          case UnifyMode::kCheckReg:
            if (v != regs_[c.a.index]) return true;
            break;
        }
      } else {
        ++st_->ops.test_builtin;
        if (!EvalTest(c)) return true;
      }
    }
    return RunLevel(li + 1);
  }

  bool RunLevel(size_t li) {
    if (li == prog_.levels.size()) {
      ++st_->solutions;
      ++st_->ops.project;
      for (size_t i = 0; i < prog_.head.size(); ++i) {
        head_buf_[i] = OperandValue(prog_.head[i]);
      }
      const Tuple* t = in_.factory->MakeTuple(head_buf_);
      ++st_->ops.insert;
      st_->changed = sink_->Emit(t) || st_->changed;
      return true;
    }
    const Level& lv = prog_.levels[li];
    auto [from, to] = in_.windows[lv.lit];
    if (from >= to) return true;
    const bool part_here =
        in_.part_lit == static_cast<int>(lv.lit) && in_.part_count > 1;

    if (lv.scan == Op::kProbeIndex) {
      HashRelation* h = in_.hash_rels[li];
      if (h != nullptr) {
        key_buf_.clear();
        for (const Operand& o : lv.key_srcs) {
          key_buf_.push_back(OperandValue(o));
        }
        std::vector<const Tuple*>& cand = cand_[li];
        cand.clear();
        if (h->ProbeArgs(lv.key_cols, key_buf_, from, to, &cand)) {
          ++st_->ops.probe_index;
          for (const Tuple* t : cand) {
            if (!Step(lv, li, t, part_here)) return false;
          }
          return true;
        }
      }
      // Planned index absent on the bound relation: scan the window and
      // let the per-column checks filter (Select's superset contract).
      ++st_->ops.probe_scan_fallbacks;
      ++st_->ops.scan_full;
    } else if (lv.scan == Op::kScanDelta) {
      ++st_->ops.scan_delta;
    } else {
      ++st_->ops.scan_full;
    }
    std::unique_ptr<TupleIterator> it = in_.rels[li]->ScanRange(from, to);
    while (const Tuple* t = it->Next()) {
      if (!Step(lv, li, t, part_here)) return false;
    }
    // A failing storage scan falls back too: the interpreter re-runs the
    // application and surfaces the error through its Status plumbing.
    return it->status().ok();
  }

  const RunInput& in_;
  const RuleProgram& prog_;
  TupleSink* sink_;
  RunStats* st_;
  std::vector<const Arg*> regs_;
  std::vector<std::vector<const Tuple*>> cand_;
  std::vector<const Arg*> head_buf_;
  std::vector<const Arg*> key_buf_;
};

}  // namespace

RunResult Execute(const RunInput& in, TupleSink* sink, RunStats* out) {
  return Executor(in, sink, out).Run();
}

}  // namespace coral::vm
