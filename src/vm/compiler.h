// Copyright (c) 1993-style CORAL reproduction authors.
// Lowers rewritten semi-naive rule versions into join bytecode. The
// compiler is conservative: any rule shape outside the VM's model
// (negation, cross-module literals, non-comparison builtins, non-ground
// structured arguments, aggregate heads) compiles to "interpreted" and
// the classic ResolveTuple path runs it — the interpreter stays the
// semantic oracle (docs/VM.md).

#ifndef CORAL_VM_COMPILER_H_
#define CORAL_VM_COMPILER_H_

#include <functional>
#include <string>

#include "src/lang/ast.h"
#include "src/rewrite/rewriter.h"
#include "src/vm/bytecode.h"

namespace coral::vm {

/// Predicate classification callbacks, supplied by the module manager so
/// the compiler needs no Database handle. Classification is re-checked at
/// bind time (modules can be added between compile and activation); a
/// mismatch simply voids the compiled program for that rule.
struct CompileEnv {
  std::function<bool(const std::string& name, uint32_t arity)> is_builtin =
      [](const std::string&, uint32_t) { return false; };
  /// True when the predicate resolves to another module's export or
  /// local predicate rather than a base relation.
  std::function<bool(const PredRef& pred)> is_module_pred =
      [](const PredRef&) { return false; };
};

/// Compiles every rule version of `prog`. Whole-module skips (@no_vm,
/// ordered search, @explain, pipelining) yield an empty sccs vector with
/// the reason in `listing`.
ModuleProgram CompileModule(const RewrittenProgram& prog,
                            const ModuleDecl& decl, const CompileEnv& env);

}  // namespace coral::vm

#endif  // CORAL_VM_COMPILER_H_
