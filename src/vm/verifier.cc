// Copyright (c) 1993-style CORAL reproduction authors.

#include "src/vm/verifier.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace coral::vm {

namespace {

using absint::kTNumeric;
using absint::kTypeBottom;
using absint::kTypeTop;
using absint::TypeSet;

/// Findings past this cap are dropped: a corrupted program tends to
/// cascade, and the first few findings carry all the signal.
constexpr size_t kMaxFindings = 64;

/// Mirrors absint's numeric widening: the engine's comparisons equate
/// across numeric kinds, so int-vs-double is never an always-fail proof.
TypeSet WidenNumeric(TypeSet t) {
  return (t & kTNumeric) != 0 ? (t | kTNumeric) : t;
}

/// Constructor class of a ground constant-pool term (the const pool is
/// ground by construction, so no variable environment is needed).
TypeSet TypeOfConst(const Arg* t) {
  switch (t->kind()) {
    case ArgKind::kInt: return absint::kTInt;
    case ArgKind::kDouble: return absint::kTDouble;
    case ArgKind::kString: return absint::kTString;
    case ArgKind::kBigInt: return absint::kTBigInt;
    case ArgKind::kSet: return absint::kTSet;
    case ArgKind::kUser: return absint::kTUser;
    case ArgKind::kVariable: return kTypeTop;  // unreachable: pool is ground
    case ArgKind::kAtomOrFunctor: {
      const auto* f = ArgCast<FunctorArg>(t);
      if (f->name() == kGroupMarker) return absint::kTSet;
      if (f->arity() == 0) {
        return f->name() == "[]" ? absint::kTList : absint::kTAtom;
      }
      if (f->arity() == 2 && f->name() == ".") return absint::kTList;
      return absint::kTFunctor;
    }
  }
  return kTypeTop;
}

const char* WindowText(RangeSel w) {
  switch (w) {
    case RangeSel::kFull: return "full";
    case RangeSel::kOld: return "old";
    case RangeSel::kDelta: return "delta";
  }
  return "?";
}

std::string ColsText(const std::vector<uint32_t>& cols) {
  std::string s = "(";
  for (size_t i = 0; i < cols.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(cols[i]);
  }
  return s + ")";
}

/// Accumulates findings with the cap applied.
class Sink {
 public:
  explicit Sink(VerifyReport* out) : out_(out) {}

  void Add(VerifySeverity sev, const char* code, std::string msg) {
    if (out_->findings.size() >= kMaxFindings) return;
    out_->findings.push_back({sev, code, std::move(msg)});
  }
  void Error(const char* code, std::string msg) {
    Add(VerifySeverity::kError, code, std::move(msg));
  }
  void Warn(const char* code, std::string msg) {
    Add(VerifySeverity::kWarning, code, std::move(msg));
  }
  void Note(const char* code, std::string msg) {
    Add(VerifySeverity::kNote, code, std::move(msg));
  }

 private:
  VerifyReport* out_;
};

std::string RegName(const Operand& o) {
  return (o.is_const ? "c" : "r") + std::to_string(o.index);
}

}  // namespace

const char* VerifySeverityName(VerifySeverity s) {
  switch (s) {
    case VerifySeverity::kError: return "error";
    case VerifySeverity::kWarning: return "warning";
    case VerifySeverity::kNote: return "note";
  }
  return "?";
}

std::string VerifyFinding::ToString() const {
  std::string s = VerifySeverityName(severity);
  s += "[";
  s += code;
  s += "]: ";
  s += message;
  return s;
}

size_t VerifyReport::error_count() const {
  size_t n = 0;
  for (const VerifyFinding& f : findings) {
    if (f.severity == VerifySeverity::kError) ++n;
  }
  return n;
}

size_t VerifyReport::warning_count() const {
  size_t n = 0;
  for (const VerifyFinding& f : findings) {
    if (f.severity == VerifySeverity::kWarning) ++n;
  }
  return n;
}

const VerifyFinding* VerifyReport::FirstError() const {
  for (const VerifyFinding& f : findings) {
    if (f.severity == VerifySeverity::kError) return &f;
  }
  return nullptr;
}

bool VerifyReport::Has(const char* code) const {
  for (const VerifyFinding& f : findings) {
    if (std::string_view(f.code) == code) return true;
  }
  return false;
}

std::string VerifyReport::ToString() const {
  std::string s;
  for (const VerifyFinding& f : findings) {
    s += f.ToString();
    s += "\n";
  }
  return s;
}

VerifyReport VerifyProgram(const RuleProgram& prog) {
  VerifyReport report;
  Sink sink(&report);

  // Sanity caps first: everything below sizes vectors by these counts.
  if (prog.nregs > kMaxRegisters) {
    sink.Error(vdiag::kOperandBounds,
               "implausible register count " + std::to_string(prog.nregs));
    return report;
  }
  if (prog.code.empty()) {
    sink.Error(vdiag::kShape, "empty program");
    return report;
  }
  for (size_t i = 0; i < prog.consts.size(); ++i) {
    if (prog.consts[i] == nullptr || !prog.consts[i]->IsGround()) {
      sink.Error(vdiag::kOperandBounds,
                 "constant pool slot c" + std::to_string(i) +
                     " is not a ground term");
      return report;
    }
  }

  // Register dataflow state: which level (ordinal) loaded each register,
  // -1 = not yet loaded. `referenced` drives the dead-register note.
  std::vector<int> load_level(prog.nregs, -1);
  std::vector<bool> referenced(prog.nregs, false);

  // Checks a source operand (kCheckReg/TEST/PROJECT position): constants
  // must be in the pool, registers in range and already loaded.
  auto check_source = [&](const Operand& o, const char* what) {
    if (o.is_const) {
      if (o.index >= prog.consts.size()) {
        sink.Error(vdiag::kOperandBounds,
                   std::string(what) + " constant " + RegName(o) +
                       " out of range (pool has " +
                       std::to_string(prog.consts.size()) + ")");
        return false;
      }
      return true;
    }
    if (o.index >= prog.nregs) {
      sink.Error(vdiag::kRegisterDataflow,
                 std::string(what) + " register " + RegName(o) +
                     " out of range (nregs=" + std::to_string(prog.nregs) +
                     ")");
      return false;
    }
    referenced[o.index] = true;
    if (load_level[o.index] < 0) {
      sink.Error(vdiag::kRegisterDataflow, std::string(what) +
                                               " of unloaded register " +
                                               RegName(o));
      return false;
    }
    return true;
  };

  int cur_level = -1;     // ordinal of the open level
  int64_t last_lit = -1;  // last scan's body-literal index
  uint32_t cur_arity = 0;
  bool cur_arity_known = false;
  bool cur_is_probe = false;
  uint32_t cur_key_cols = 0;
  bool closed = false;  // PROJECT seen
  uint32_t scans = 0;

  auto close_level = [&]() {
    if (cur_level >= 0 && cur_is_probe && cur_key_cols == 0) {
      sink.Error(vdiag::kShape,
                 "PROBE_INDEX level at literal " + std::to_string(last_lit) +
                     " has no key column (no constant or outer-register "
                     "check)");
    }
  };

  for (size_t i = 0; i < prog.code.size(); ++i) {
    const Instr& in = prog.code[i];
    switch (in.op) {
      case Op::kScanFull:
      case Op::kScanDelta:
      case Op::kProbeIndex: {
        if (closed) {
          sink.Error(vdiag::kShape, "scan after PROJECT");
          return report;
        }
        close_level();
        if (in.lit >= kMaxLiterals) {
          sink.Error(vdiag::kShape, "implausible scan literal index " +
                                        std::to_string(in.lit));
          return report;
        }
        if (static_cast<int64_t>(in.lit) <= last_lit) {
          sink.Error(vdiag::kShape,
                     "scan literals must strictly increase (lit=" +
                         std::to_string(in.lit) + " after lit=" +
                         std::to_string(last_lit) + ")");
        }
        last_lit = in.lit;
        ++cur_level;
        cur_is_probe = in.op == Op::kProbeIndex;
        cur_key_cols = 0;
        cur_arity_known = false;
        if (in.pred >= prog.preds.size()) {
          sink.Error(vdiag::kOperandBounds,
                     "scan pred slot " + std::to_string(in.pred) +
                         " out of range (table has " +
                         std::to_string(prog.preds.size()) + ")");
        } else {
          if (in.pred != static_cast<uint32_t>(cur_level)) {
            sink.Error(vdiag::kShape,
                       "scan pred slot " + std::to_string(in.pred) +
                           " does not match level ordinal " +
                           std::to_string(cur_level));
          }
          cur_arity = prog.preds[in.pred].arity;
          cur_arity_known = true;
        }
        // Window/opcode agreement: SCAN_DELTA is exactly "plain scan of
        // the delta window"; a probe may carry any window.
        if (in.op == Op::kScanDelta && in.window != RangeSel::kDelta) {
          sink.Error(vdiag::kShape, "SCAN_DELTA with window=" +
                                        std::string(WindowText(in.window)));
        }
        if (in.op == Op::kScanFull && in.window == RangeSel::kDelta) {
          sink.Error(vdiag::kShape, "SCAN_FULL over the delta window");
        }
        ++scans;
        break;
      }
      case Op::kUnifyArg: {
        if (cur_level < 0 || closed) {
          sink.Error(vdiag::kShape, "UNIFY_ARG outside a level");
          return report;
        }
        if (cur_arity_known && in.col >= cur_arity) {
          sink.Error(vdiag::kOperandBounds,
                     "UNIFY_ARG column " + std::to_string(in.col) +
                         " out of range for " +
                         prog.preds[cur_level].ToString());
        }
        switch (in.mode) {
          case UnifyMode::kMatchConst:
            if (!in.a.is_const) {
              sink.Error(vdiag::kOperandBounds,
                         "UNIFY_ARG match with register operand " +
                             RegName(in.a));
            } else if (in.a.index >= prog.consts.size()) {
              sink.Error(vdiag::kOperandBounds,
                         "UNIFY_ARG match constant " + RegName(in.a) +
                             " out of range (pool has " +
                             std::to_string(prog.consts.size()) + ")");
            } else {
              ++cur_key_cols;
            }
            break;
          case UnifyMode::kLoadReg:
            if (in.a.is_const) {
              sink.Error(vdiag::kRegisterDataflow,
                         "UNIFY_ARG load of constant operand " +
                             RegName(in.a));
            } else if (in.a.index >= prog.nregs) {
              sink.Error(vdiag::kRegisterDataflow,
                         "UNIFY_ARG load register " + RegName(in.a) +
                             " out of range (nregs=" +
                             std::to_string(prog.nregs) + ")");
            } else if (load_level[in.a.index] >= 0) {
              sink.Error(vdiag::kRegisterDataflow,
                         "register " + RegName(in.a) +
                             " loaded twice (registers are defined exactly "
                             "once)");
            } else {
              load_level[in.a.index] = cur_level;
            }
            break;
          case UnifyMode::kCheckReg:
            if (in.a.is_const) {
              sink.Error(vdiag::kRegisterDataflow,
                         "UNIFY_ARG check with constant operand " +
                             RegName(in.a));
            } else if (check_source(in.a, "UNIFY_ARG check") &&
                       load_level[in.a.index] < cur_level) {
              // Available before this loop opens: joins the probe key.
              ++cur_key_cols;
            }
            break;
        }
        break;
      }
      case Op::kTestBuiltin:
        if (cur_level < 0 || closed) {
          sink.Error(vdiag::kShape, "TEST_BUILTIN outside a level");
          return report;
        }
        check_source(in.a, "TEST_BUILTIN");
        check_source(in.b, "TEST_BUILTIN");
        break;
      case Op::kProject: {
        if (cur_level < 0) {
          sink.Error(vdiag::kShape, "PROJECT before any scan");
          return report;
        }
        if (closed) {
          sink.Error(vdiag::kShape, "duplicate PROJECT");
          return report;
        }
        if (i + 2 != prog.code.size()) {
          sink.Error(vdiag::kShape,
                     "PROJECT must be the second-to-last instruction");
        }
        close_level();
        if (prog.head.size() != prog.head_pred.arity) {
          sink.Error(vdiag::kOperandBounds,
                     "head operand count " + std::to_string(prog.head.size()) +
                         " does not match head arity of " +
                         prog.head_pred.ToString());
        }
        for (const Operand& o : prog.head) check_source(o, "head operand");
        closed = true;
        break;
      }
      case Op::kInsert:
        if (!closed || i + 1 != prog.code.size()) {
          sink.Error(vdiag::kShape,
                     "INSERT must immediately follow PROJECT and terminate "
                     "the program");
          if (!closed) return report;
        }
        break;
    }
  }
  if (!closed) {
    sink.Error(vdiag::kShape, "program has no PROJECT/INSERT tail");
  }
  if (scans != prog.preds.size()) {
    sink.Error(vdiag::kOperandBounds,
               "pred table has " + std::to_string(prog.preds.size()) +
                   " entries but the program opens " + std::to_string(scans) +
                   " levels");
  }

  // Dead registers: allocated slots never loaded (and never referenced —
  // a reference without a load is a CRL310 error above). The compiler
  // numbers registers by rule variable slot, so unused slots are routine
  // in correct output: a note, never a rejection.
  std::vector<uint32_t> dead;
  for (uint32_t r = 0; r < prog.nregs; ++r) {
    if (load_level[r] < 0 && !referenced[r]) dead.push_back(r);
  }
  if (!dead.empty()) {
    std::string regs;
    for (size_t i = 0; i < dead.size() && i < 8; ++i) {
      if (i > 0) regs += ", ";
      regs += "r" + std::to_string(dead[i]);
    }
    if (dead.size() > 8) regs += ", ...";
    sink.Note(vdiag::kDeadRegister,
              std::to_string(dead.size()) + " register slot(s) never loaded (" +
                  regs + ")");
  }
  return report;
}

namespace {

/// Plan-consistency and type-lattice checks for one structurally valid
/// program (AuditModule's per-program second pass).
void AuditProgram(const RuleProgram& prog, bool once, uint32_t scc,
                  uint32_t index, const AuditOptions& opts, Sink* sink) {
  const RewrittenProgram* rw = opts.rewritten;
  const Rule* rule = nullptr;
  if (rw != nullptr) {
    if (prog.rule_index >= rw->rules.size()) {
      sink->Error(vdiag::kOperandBounds,
                  "rule index " + std::to_string(prog.rule_index) +
                      " out of range (program has " +
                      std::to_string(rw->rules.size()) + " rules)");
    } else {
      rule = &rw->rules[prog.rule_index];
      if (!(prog.head_pred == rule->head.pred_ref())) {
        sink->Error(vdiag::kPlanMismatch,
                    "head " + prog.head_pred.ToString() +
                        " disagrees with rule head " +
                        rule->head.pred_ref().ToString());
      }
    }
  }

  // The semi-naive version this program claims to implement: windows must
  // match its per-literal ranges (SCAN_DELTA only in delta versions).
  const RuleVersion* version = nullptr;
  if (rw != nullptr) {
    if (scc < rw->seminaive.sccs.size()) {
      const SccPlan& plan = rw->seminaive.sccs[scc];
      const std::vector<RuleVersion>& table =
          once ? plan.once : plan.versions;
      if (index < table.size()) version = &table[index];
    }
    if (version == nullptr) {
      sink->Error(vdiag::kPlanMismatch,
                  "no matching semi-naive rule version in the plan");
    } else if (version->rule_index != prog.rule_index) {
      sink->Error(vdiag::kPlanMismatch,
                  "rule index " + std::to_string(prog.rule_index) +
                      " disagrees with the plan version's rule " +
                      std::to_string(version->rule_index));
    }
  }

  for (const Level& lv : prog.levels) {
    if (lv.pred >= prog.preds.size()) continue;  // structural error already
    const PredRef& pred = prog.preds[lv.pred];
    if (rule != nullptr) {
      if (lv.lit >= rule->body.size()) {
        sink->Error(vdiag::kOperandBounds,
                    "scan literal " + std::to_string(lv.lit) +
                        " out of range (rule body has " +
                        std::to_string(rule->body.size()) + " literals)");
      } else if (!(pred == rule->body[lv.lit].pred_ref())) {
        sink->Error(vdiag::kPlanMismatch,
                    "scan of " + pred.ToString() + " at literal " +
                        std::to_string(lv.lit) +
                        " disagrees with body literal " +
                        rule->body[lv.lit].pred_ref().ToString());
      }
    }
    if (version != nullptr) {
      RangeSel want = lv.lit < version->ranges.size()
                          ? version->ranges[lv.lit]
                          : RangeSel::kFull;
      if (lv.window != want) {
        sink->Error(vdiag::kPlanMismatch,
                    "window " + std::string(WindowText(lv.window)) +
                        " at literal " + std::to_string(lv.lit) +
                        ", plan version says " + WindowText(want));
      }
    }

    // CRL302: a probe whose key columns no planned (or declared) argument
    // index can serve will degrade to a window scan at run time. Only
    // meaningful when automatic index planning ran; ProbeArgs accepts any
    // index whose columns are a subset of the probe key.
    if (lv.scan == Op::kProbeIndex && opts.index_plan_authoritative &&
        rw != nullptr && !lv.key_cols.empty()) {
      auto subset_of_key = [&](const std::vector<uint32_t>& cols) {
        if (cols.empty()) return false;
        for (uint32_t c : cols) {
          if (std::find(lv.key_cols.begin(), lv.key_cols.end(), c) ==
              lv.key_cols.end()) {
            return false;
          }
        }
        return true;
      };
      bool backed = false;
      for (const PlannedIndex& pi : rw->index_plan) {
        if (pi.pred == pred && subset_of_key(pi.cols)) {
          backed = true;
          break;
        }
      }
      if (!backed && pred == rw->answer_pred &&
          !rw->bound_positions.empty() &&
          rw->bound_positions.size() < rw->answer_pred.arity &&
          subset_of_key(rw->bound_positions)) {
        backed = true;  // the answer relation is indexed on its adornment
      }
      if (!backed && opts.decl != nullptr) {
        // @make_index declarations attach through the pre-adornment name.
        Symbol orig = pred.sym;
        auto oit = rw->original_of.find(pred);
        if (oit != rw->original_of.end()) orig = oit->second.sym;
        for (const IndexDecl& decl : opts.decl->indexes) {
          if (decl.argument_form && decl.pred == orig &&
              decl.pattern.size() == pred.arity && subset_of_key(decl.cols)) {
            backed = true;
            break;
          }
        }
      }
      if (!backed) {
        sink->Warn(vdiag::kProbeNoIndex,
                   "probe of " + pred.ToString() + " on columns " +
                       ColsText(lv.key_cols) +
                       " has no backing planned index; degrades to a scan");
      }
    }
  }

  // CRL303: always-fail unification proven by the type lattice. Register
  // types come from the columns that load them (absint facts for derived
  // predicates, top for base relations); a meet that is empty after
  // numeric widening can never succeed at run time.
  auto col_type = [&](int level, uint32_t col) -> TypeSet {
    if (opts.facts == nullptr || level < 0 ||
        level >= static_cast<int>(prog.preds.size())) {
      return kTypeTop;
    }
    const absint::PredFacts* pf = opts.facts->Find(prog.preds[level]);
    if (pf == nullptr || col >= pf->args.size()) return kTypeTop;
    return pf->args[col].types;
  };
  std::vector<TypeSet> reg_types(prog.nregs, kTypeTop);
  auto operand_type = [&](const Operand& o) -> TypeSet {
    if (o.is_const) {
      return o.index < prog.consts.size() ? TypeOfConst(prog.consts[o.index])
                                          : kTypeTop;
    }
    return o.index < reg_types.size() ? reg_types[o.index] : kTypeTop;
  };
  auto disjoint = [](TypeSet a, TypeSet b) {
    return a != kTypeBottom && b != kTypeBottom &&
           (WidenNumeric(a) & WidenNumeric(b)) == 0;
  };
  int level = -1;
  for (const Instr& in : prog.code) {
    switch (in.op) {
      case Op::kScanFull:
      case Op::kScanDelta:
      case Op::kProbeIndex:
        ++level;
        break;
      case Op::kUnifyArg: {
        TypeSet ct = col_type(level, in.col);
        switch (in.mode) {
          case UnifyMode::kLoadReg:
            if (!in.a.is_const && in.a.index < reg_types.size()) {
              reg_types[in.a.index] = ct;
            }
            break;
          case UnifyMode::kMatchConst:
            if (in.a.is_const && in.a.index < prog.consts.size() &&
                disjoint(TypeOfConst(prog.consts[in.a.index]), ct)) {
              sink->Warn(vdiag::kAlwaysFailUnify,
                         "constant " + prog.consts[in.a.index]->ToString() +
                             " can never match column " +
                             std::to_string(in.col) + " of " +
                             (level >= 0 &&
                                      level < static_cast<int>(
                                                  prog.preds.size())
                                  ? prog.preds[level].ToString()
                                  : "?") +
                             " (type lattice meet is empty)");
            }
            break;
          case UnifyMode::kCheckReg:
            if (!in.a.is_const && in.a.index < reg_types.size() &&
                disjoint(reg_types[in.a.index], ct)) {
              sink->Warn(vdiag::kAlwaysFailUnify,
                         "register " + RegName(in.a) +
                             " can never match column " +
                             std::to_string(in.col) + " of " +
                             (level >= 0 &&
                                      level < static_cast<int>(
                                                  prog.preds.size())
                                  ? prog.preds[level].ToString()
                                  : "?") +
                             " (type lattice meet is empty)");
            }
            break;
        }
        break;
      }
      case Op::kTestBuiltin: {
        TypeSet ta = operand_type(in.a);
        TypeSet tb = operand_type(in.b);
        bool both_const = in.a.is_const && in.b.is_const &&
                          in.a.index < prog.consts.size() &&
                          in.b.index < prog.consts.size();
        if (in.cmp == CmpOp::kEq) {
          if (disjoint(ta, tb)) {
            sink->Warn(vdiag::kAlwaysFailUnify,
                       "eq of " + RegName(in.a) + " and " + RegName(in.b) +
                           " can never succeed (disjoint types)");
          } else if (both_const &&
                     prog.consts[in.a.index] != prog.consts[in.b.index]) {
            // Distinct canonical constants of the same non-numeric-mixing
            // kind are never equal (numerics can equate across kinds).
            ArgKind ka = prog.consts[in.a.index]->kind();
            ArgKind kb = prog.consts[in.b.index]->kind();
            if (ka == kb && (ka == ArgKind::kInt || ka == ArgKind::kString ||
                             ka == ArgKind::kAtomOrFunctor)) {
              sink->Warn(vdiag::kAlwaysFailUnify,
                         "eq of distinct constants " +
                             prog.consts[in.a.index]->ToString() + " and " +
                             prog.consts[in.b.index]->ToString() +
                             " can never succeed");
            }
          }
        } else if (in.cmp == CmpOp::kNe && both_const &&
                   prog.consts[in.a.index] == prog.consts[in.b.index]) {
          sink->Warn(vdiag::kAlwaysFailUnify,
                     "ne of the constant " +
                         prog.consts[in.a.index]->ToString() +
                         " with itself can never succeed");
        }
        break;
      }
      case Op::kProject:
      case Op::kInsert:
        break;
    }
  }
}

}  // namespace

std::string ModuleAudit::ToString() const {
  if (verdicts.empty()) return "";
  std::ostringstream os;
  os << "programs: " << verified << " verified, " << rejected
     << " rejected, " << warnings << " warning(s)\n";
  for (const ProgramVerdict& v : verdicts) {
    for (const VerifyFinding& f : v.report.findings) {
      if (f.severity == VerifySeverity::kNote) continue;
      os << "scc " << v.scc << " " << (v.once ? "once" : "version") << " "
         << v.index << " rule " << v.rule_index << " head " << v.head << ": "
         << f.ToString() << "\n";
    }
  }
  return os.str();
}

ModuleAudit AuditModule(const ModuleProgram& mp, const AuditOptions& opts) {
  ModuleAudit audit;
  for (size_t si = 0; si < mp.sccs.size(); ++si) {
    const SccPrograms& sp = mp.sccs[si];
    auto table = [&](const std::vector<std::unique_ptr<RuleProgram>>& progs,
                     bool once) {
      for (size_t vi = 0; vi < progs.size(); ++vi) {
        const RuleProgram* rp = progs[vi].get();
        if (rp == nullptr) continue;  // interpreted version
        ProgramVerdict v;
        v.scc = static_cast<uint32_t>(si);
        v.once = once;
        v.index = static_cast<uint32_t>(vi);
        v.rule_index = rp->rule_index;
        v.head = rp->head_pred.ToString();
        v.report = VerifyProgram(*rp);
        if (v.report.ok()) {
          // Plan-consistency and type checks assume structural validity
          // (they index by the shapes the structural pass establishes).
          Sink sink(&v.report);
          AuditProgram(*rp, once, v.scc, v.index, opts, &sink);
        }
        if (v.report.ok()) {
          ++audit.verified;
        } else {
          ++audit.rejected;
        }
        audit.warnings += v.report.warning_count();
        audit.verdicts.push_back(std::move(v));
      }
    };
    table(sp.versions, /*once=*/false);
    table(sp.once, /*once=*/true);
  }
  return audit;
}

}  // namespace coral::vm
