// Copyright (c) 1993-style CORAL reproduction authors.

#include "src/vm/bytecode.h"

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "src/lang/parser.h"
#include "src/vm/verifier.h"

namespace coral::vm {

namespace {

/// Serialization format version, bumped on any change to the textual
/// opcode grammar so checked-in goldens and coral_bcverify corpora fail
/// loudly instead of misparsing. Emitted as the first Disassemble line.
constexpr uint32_t kFormatVersion = 1;

const char* OpName(Op op) {
  switch (op) {
    case Op::kScanFull: return "SCAN_FULL";
    case Op::kScanDelta: return "SCAN_DELTA";
    case Op::kProbeIndex: return "PROBE_INDEX";
    case Op::kUnifyArg: return "UNIFY_ARG";
    case Op::kTestBuiltin: return "TEST_BUILTIN";
    case Op::kProject: return "PROJECT";
    case Op::kInsert: return "INSERT";
  }
  return "?";
}

const char* WindowName(RangeSel w) {
  switch (w) {
    case RangeSel::kFull: return "full";
    case RangeSel::kOld: return "old";
    case RangeSel::kDelta: return "delta";
  }
  return "?";
}

const char* CmpName(CmpOp c) {
  switch (c) {
    case CmpOp::kLt: return "lt";
    case CmpOp::kGt: return "gt";
    case CmpOp::kLe: return "le";
    case CmpOp::kGe: return "ge";
    case CmpOp::kEq: return "eq";
    case CmpOp::kNe: return "ne";
  }
  return "?";
}

std::string OperandText(const Operand& o) {
  return (o.is_const ? "c" : "r") + std::to_string(o.index);
}

bool ParseOperand(std::string_view tok, Operand* out) {
  if (tok.size() < 2 || (tok[0] != 'r' && tok[0] != 'c')) return false;
  out->is_const = tok[0] == 'c';
  uint32_t v = 0;
  for (char ch : tok.substr(1)) {
    if (!std::isdigit(static_cast<unsigned char>(ch))) return false;
    v = v * 10 + static_cast<uint32_t>(ch - '0');
  }
  out->index = v;
  return true;
}

/// Value of a "key=value" token, or empty when the key does not match.
std::string_view KeyedValue(std::string_view tok, std::string_view key) {
  if (tok.size() <= key.size() + 1 || tok.substr(0, key.size()) != key ||
      tok[key.size()] != '=') {
    return {};
  }
  return tok.substr(key.size() + 1);
}

bool ParseU32(std::string_view s, uint32_t* out) {
  if (s.empty() || s.size() > 10) return false;  // overflow guard
  uint64_t v = 0;
  for (char ch : s) {
    if (!std::isdigit(static_cast<unsigned char>(ch))) return false;
    v = v * 10 + static_cast<uint64_t>(ch - '0');
  }
  if (v > UINT32_MAX) return false;
  *out = static_cast<uint32_t>(v);
  return true;
}

/// Splits "name/arity" on the last slash and interns the predicate.
bool ParsePred(std::string_view tok, TermFactory* factory, PredRef* out) {
  size_t slash = tok.rfind('/');
  if (slash == std::string_view::npos || slash == 0) return false;
  uint32_t arity = 0;
  if (!ParseU32(tok.substr(slash + 1), &arity)) return false;
  out->sym = factory->symbols().Intern(tok.substr(0, slash));
  out->arity = arity;
  return true;
}

std::vector<std::string_view> Tokens(std::string_view line) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    size_t j = i;
    while (j < line.size() && line[j] != ' ') ++j;
    if (j > i) out.push_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

}  // namespace

Status BuildLevels(RuleProgram* prog) {
  prog->levels.clear();
  // first_load[r] = level index that loads register r, or -1.
  std::vector<int> first_load(prog->nregs, -1);
  auto operand_ok = [&](const Operand& o, bool allow_current_level) {
    if (o.is_const) return o.index < prog->consts.size();
    if (o.index >= prog->nregs) return false;
    if (first_load[o.index] < 0) return false;
    if (!allow_current_level &&
        first_load[o.index] + 1 == static_cast<int>(prog->levels.size())) {
      return false;
    }
    return true;
  };
  bool closed = false;
  for (uint32_t i = 0; i < prog->code.size(); ++i) {
    const Instr& in = prog->code[i];
    switch (in.op) {
      case Op::kScanFull:
      case Op::kScanDelta:
      case Op::kProbeIndex: {
        if (closed) return Status::InvalidArgument("vm: scan after PROJECT");
        Level lv;
        lv.lit = in.lit;
        lv.pred = in.pred;
        lv.scan = in.op;
        lv.window = in.window;
        lv.first_check = i + 1;
        if (in.pred >= prog->preds.size()) {
          return Status::InvalidArgument("vm: scan pred out of range");
        }
        prog->levels.push_back(std::move(lv));
        break;
      }
      case Op::kUnifyArg: {
        if (prog->levels.empty() || closed) {
          return Status::InvalidArgument("vm: UNIFY_ARG outside a level");
        }
        Level& lv = prog->levels.back();
        ++lv.num_checks;
        switch (in.mode) {
          case UnifyMode::kMatchConst:
            if (!in.a.is_const || in.a.index >= prog->consts.size()) {
              return Status::InvalidArgument("vm: bad const operand");
            }
            lv.key_cols.push_back(in.col);
            lv.key_srcs.push_back(in.a);
            break;
          case UnifyMode::kLoadReg:
            if (in.a.is_const || in.a.index >= prog->nregs ||
                first_load[in.a.index] >= 0) {
              return Status::InvalidArgument("vm: bad register load");
            }
            first_load[in.a.index] =
                static_cast<int>(prog->levels.size()) - 1;
            break;
          case UnifyMode::kCheckReg: {
            if (in.a.is_const || !operand_ok(in.a, true)) {
              return Status::InvalidArgument("vm: check of unloaded register");
            }
            // Registers captured by an *outer* level are available before
            // this loop opens, so the column can join the probe key; a
            // repeated variable within the same literal cannot.
            if (operand_ok(in.a, false)) {
              lv.key_cols.push_back(in.col);
              lv.key_srcs.push_back(in.a);
            }
            break;
          }
        }
        break;
      }
      case Op::kTestBuiltin:
        if (prog->levels.empty() || closed) {
          return Status::InvalidArgument("vm: TEST_BUILTIN outside a level");
        }
        if (!operand_ok(in.a, true) || !operand_ok(in.b, true)) {
          return Status::InvalidArgument("vm: test of unloaded register");
        }
        ++prog->levels.back().num_checks;
        break;
      case Op::kProject:
        if (prog->levels.empty() || closed) {
          return Status::InvalidArgument("vm: PROJECT misplaced");
        }
        if (i + 2 != prog->code.size() ||
            prog->code[i + 1].op != Op::kInsert) {
          return Status::InvalidArgument("vm: PROJECT must precede INSERT");
        }
        for (const Operand& o : prog->head) {
          if (!operand_ok(o, true)) {
            return Status::InvalidArgument("vm: unbound head operand");
          }
        }
        if (prog->head.size() != prog->head_pred.arity) {
          return Status::InvalidArgument("vm: head arity mismatch");
        }
        closed = true;
        break;
      case Op::kInsert:
        if (!closed) {
          return Status::InvalidArgument("vm: INSERT without PROJECT");
        }
        break;
    }
  }
  if (!closed || prog->levels.empty()) {
    return Status::InvalidArgument("vm: program has no PROJECT/INSERT tail");
  }
  return Status::OK();
}

std::string Disassemble(const RuleProgram& prog) {
  std::ostringstream os;
  os << "coralbc " << kFormatVersion << "\n";
  os << "rule " << prog.rule_index << " head " << prog.head_pred.ToString()
     << " regs " << prog.nregs << "\n";
  for (size_t i = 0; i < prog.consts.size(); ++i) {
    os << "  const c" << i << " = " << prog.consts[i]->ToString() << "\n";
  }
  for (const Instr& in : prog.code) {
    os << "  " << OpName(in.op);
    switch (in.op) {
      case Op::kScanFull:
      case Op::kScanDelta:
      case Op::kProbeIndex:
        os << " lit=" << in.lit << " rel=" << prog.preds[in.pred].ToString()
           << " window=" << WindowName(in.window);
        break;
      case Op::kUnifyArg:
        os << " col=" << in.col << " "
           << (in.mode == UnifyMode::kMatchConst
                   ? "match"
                   : in.mode == UnifyMode::kLoadReg ? "load" : "check")
           << " " << OperandText(in.a);
        break;
      case Op::kTestBuiltin:
        os << " " << CmpName(in.cmp) << " " << OperandText(in.a) << " "
           << OperandText(in.b);
        break;
      case Op::kProject:
        for (const Operand& o : prog.head) os << " " << OperandText(o);
        break;
      case Op::kInsert:
        os << " " << prog.head_pred.ToString();
        break;
    }
    os << "\n";
  }
  return os.str();
}

StatusOr<RuleProgram> Deserialize(std::string_view text,
                                  TermFactory* factory) {
  RuleProgram prog;
  bool saw_version = false;
  bool saw_header = false;
  int64_t last_lit = -1;  // scans must open strictly increasing literals
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    while (!line.empty() && line.front() == ' ') line.remove_prefix(1);
    while (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;

    std::vector<std::string_view> toks = Tokens(line);
    std::string_view kw = toks[0];
    if (!saw_version) {
      // The first line must be the format-version header; refuse text
      // from a different (or missing) serialization version outright.
      uint32_t version = 0;
      if (kw != "coralbc" || toks.size() != 2 ||
          !ParseU32(toks[1], &version)) {
        return Status::InvalidArgument(
            "vm: missing 'coralbc <version>' header, got: " +
            std::string(line));
      }
      if (version != kFormatVersion) {
        return Status::InvalidArgument(
            "vm: unsupported bytecode format version " +
            std::string(toks[1]) + " (this build reads version " +
            std::to_string(kFormatVersion) + ")");
      }
      saw_version = true;
      continue;
    }
    if (kw == "rule") {
      if (saw_header || toks.size() != 6 || toks[2] != "head" ||
          toks[4] != "regs") {
        return Status::InvalidArgument("vm: bad rule header: " +
                                       std::string(line));
      }
      if (!ParseU32(toks[1], &prog.rule_index) ||
          !ParsePred(toks[3], factory, &prog.head_pred) ||
          !ParseU32(toks[5], &prog.nregs)) {
        return Status::InvalidArgument("vm: bad rule header: " +
                                       std::string(line));
      }
      if (prog.nregs > kMaxRegisters) {
        return Status::InvalidArgument(
            "vm: implausible register count in: " + std::string(line));
      }
      saw_header = true;
      continue;
    }
    if (!saw_header) {
      return Status::InvalidArgument("vm: missing rule header");
    }
    if (kw == "const") {
      // const c<i> = <term text>; the term text may contain spaces.
      size_t eq = line.find(" = ");
      if (toks.size() < 4 || toks[2] != "=" ||
          eq == std::string_view::npos) {
        return Status::InvalidArgument("vm: bad const line: " +
                                       std::string(line));
      }
      Operand slot;
      if (!ParseOperand(toks[1], &slot) || !slot.is_const ||
          slot.index != prog.consts.size()) {
        return Status::InvalidArgument("vm: bad const slot: " +
                                       std::string(line));
      }
      uint32_t var_count = 0;
      auto term = Parser::ParseTerm(line.substr(eq + 3), factory, &var_count);
      if (!term.ok()) return term.status();
      if (var_count != 0 || !(*term)->IsGround()) {
        return Status::InvalidArgument("vm: non-ground const: " +
                                       std::string(line));
      }
      prog.consts.push_back(*term);
      continue;
    }

    Instr in;
    if (kw == "SCAN_FULL" || kw == "SCAN_DELTA" || kw == "PROBE_INDEX") {
      in.op = kw == "SCAN_FULL"
                  ? Op::kScanFull
                  : kw == "SCAN_DELTA" ? Op::kScanDelta : Op::kProbeIndex;
      if (toks.size() != 4) {
        return Status::InvalidArgument("vm: bad scan: " + std::string(line));
      }
      PredRef pred;
      std::string_view w = KeyedValue(toks[3], "window");
      if (!ParseU32(KeyedValue(toks[1], "lit"), &in.lit) ||
          !ParsePred(KeyedValue(toks[2], "rel"), factory, &pred) ||
          w.empty()) {
        return Status::InvalidArgument("vm: bad scan: " + std::string(line));
      }
      if (w == "full") {
        in.window = RangeSel::kFull;
      } else if (w == "old") {
        in.window = RangeSel::kOld;
      } else if (w == "delta") {
        in.window = RangeSel::kDelta;
      } else {
        return Status::InvalidArgument("vm: bad window: " + std::string(line));
      }
      if (in.lit >= kMaxLiterals ||
          static_cast<int64_t>(in.lit) <= last_lit) {
        return Status::InvalidArgument(
            "vm: scans must open strictly increasing literals: " +
            std::string(line));
      }
      last_lit = in.lit;
      in.pred = static_cast<uint32_t>(prog.preds.size());
      prog.preds.push_back(pred);
    } else if (kw == "UNIFY_ARG") {
      in.op = Op::kUnifyArg;
      if (toks.size() != 4 || !ParseU32(KeyedValue(toks[1], "col"), &in.col) ||
          !ParseOperand(toks[3], &in.a)) {
        return Status::InvalidArgument("vm: bad unify: " + std::string(line));
      }
      if (toks[2] == "match") {
        in.mode = UnifyMode::kMatchConst;
      } else if (toks[2] == "load") {
        in.mode = UnifyMode::kLoadReg;
      } else if (toks[2] == "check") {
        in.mode = UnifyMode::kCheckReg;
      } else {
        return Status::InvalidArgument("vm: bad unify mode: " +
                                       std::string(line));
      }
      // The const pool is complete by the time code lines appear, so
      // operand references are checkable at parse time.
      if (in.mode == UnifyMode::kMatchConst
              ? (!in.a.is_const || in.a.index >= prog.consts.size())
              : (in.a.is_const || in.a.index >= prog.nregs)) {
        return Status::InvalidArgument("vm: unify operand out of range: " +
                                       std::string(line));
      }
    } else if (kw == "TEST_BUILTIN") {
      in.op = Op::kTestBuiltin;
      if (toks.size() != 4 || !ParseOperand(toks[2], &in.a) ||
          !ParseOperand(toks[3], &in.b)) {
        return Status::InvalidArgument("vm: bad test: " + std::string(line));
      }
      std::string_view c = toks[1];
      if (c == "lt") {
        in.cmp = CmpOp::kLt;
      } else if (c == "gt") {
        in.cmp = CmpOp::kGt;
      } else if (c == "le") {
        in.cmp = CmpOp::kLe;
      } else if (c == "ge") {
        in.cmp = CmpOp::kGe;
      } else if (c == "eq") {
        in.cmp = CmpOp::kEq;
      } else if (c == "ne") {
        in.cmp = CmpOp::kNe;
      } else {
        return Status::InvalidArgument("vm: bad cmp: " + std::string(line));
      }
      auto in_range = [&](const Operand& o) {
        return o.index < (o.is_const ? prog.consts.size()
                                     : static_cast<size_t>(prog.nregs));
      };
      if (!in_range(in.a) || !in_range(in.b)) {
        return Status::InvalidArgument("vm: test operand out of range: " +
                                       std::string(line));
      }
    } else if (kw == "PROJECT") {
      in.op = Op::kProject;
      if (!prog.head.empty()) {
        return Status::InvalidArgument("vm: duplicate PROJECT");
      }
      for (size_t i = 1; i < toks.size(); ++i) {
        Operand o;
        if (!ParseOperand(toks[i], &o) ||
            o.index >= (o.is_const ? prog.consts.size()
                                   : static_cast<size_t>(prog.nregs))) {
          return Status::InvalidArgument("vm: bad PROJECT operand: " +
                                         std::string(line));
        }
        prog.head.push_back(o);
      }
    } else if (kw == "INSERT") {
      in.op = Op::kInsert;
      PredRef pred;
      if (toks.size() != 2 || !ParsePred(toks[1], factory, &pred) ||
          !(pred == prog.head_pred)) {
        return Status::InvalidArgument("vm: bad INSERT: " + std::string(line));
      }
    } else {
      return Status::InvalidArgument("vm: unknown opcode: " +
                                     std::string(line));
    }
    prog.code.push_back(in);
  }
  if (!saw_header) {
    return Status::InvalidArgument("vm: empty program");
  }
  Status st = BuildLevels(&prog);
  if (!st.ok()) return st;
  // Untrusted text must additionally pass the full static verifier, so a
  // structurally corrupt program never reaches the bind path.
  VerifyReport report = VerifyProgram(prog);
  if (const VerifyFinding* err = report.FirstError(); err != nullptr) {
    return Status::InvalidArgument("vm: verifier rejected program: " +
                                   err->ToString());
  }
  return prog;
}

}  // namespace coral::vm
