// Copyright (c) 1993-style CORAL reproduction authors.
// Join bytecode for semi-naive rule bodies (docs/VM.md). After the
// rewriter has fixed join order and probe patterns, a rule body is a
// straight-line loop nest; this lowers it to a flat register program:
//
//   SCAN_FULL / SCAN_DELTA / PROBE_INDEX   open one body-literal loop
//   UNIFY_ARG                              match or capture one column
//   TEST_BUILTIN                           comparison goal
//   PROJECT / INSERT                       build and insert the head tuple
//
// Registers hold canonical ground Args (one per rule variable slot), so
// every match is a pointer comparison — the hash-consing argument of
// paper §3.1 taken to its conclusion. The flat instruction list is the
// single source of truth: disassembly, serialization, and the derived
// Level execution structure (BuildLevels) are all computed from it, which
// is what makes serialize -> deserialize -> disassemble a fixed point.

#ifndef CORAL_VM_BYTECODE_H_
#define CORAL_VM_BYTECODE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/data/arg.h"
#include "src/data/term_factory.h"
#include "src/lang/ast.h"
#include "src/rewrite/seminaive.h"
#include "src/util/status.h"

namespace coral::vm {

enum class Op : uint8_t {
  kScanFull,
  kScanDelta,
  kProbeIndex,
  kUnifyArg,
  kTestBuiltin,
  kProject,
  kInsert,
};

/// How UNIFY_ARG treats one tuple column. Rules are range-restricted and
/// stored tuples are ground, so full unification never happens here: a
/// column either must equal a constant, must equal an already-captured
/// register, or captures into a fresh register.
enum class UnifyMode : uint8_t { kMatchConst, kLoadReg, kCheckReg };

/// Comparison builtins the VM executes natively; everything else falls
/// back to the interpreter at compile time.
enum class CmpOp : uint8_t { kLt, kGt, kLe, kGe, kEq, kNe };

/// A register (rN) or constant-pool (cN) reference.
struct Operand {
  bool is_const = false;
  uint32_t index = 0;

  bool operator==(const Operand& o) const {
    return is_const == o.is_const && index == o.index;
  }
};

struct Instr {
  Op op = Op::kScanFull;
  UnifyMode mode = UnifyMode::kLoadReg;  // kUnifyArg
  CmpOp cmp = CmpOp::kEq;                // kTestBuiltin
  RangeSel window = RangeSel::kFull;     // scans: static window class
  uint32_t col = 0;                      // kUnifyArg: tuple column
  uint32_t lit = 0;                      // scans: body literal index
  uint32_t pred = 0;                     // scans: RuleProgram::preds slot
  Operand a;  // kUnifyArg: source; kTestBuiltin: left operand
  Operand b;  // kTestBuiltin: right operand
};

/// One body-literal loop, derived from the instruction list. `key_cols`
/// are the columns whose UNIFY_ARG checks only consult values available
/// before the loop opens (constants and registers loaded by outer
/// levels); they form the probe key for PROBE_INDEX. The per-column
/// checks are still executed for every candidate, so a probe may degrade
/// to a scan of the window without changing results.
struct Level {
  uint32_t lit = 0;
  uint32_t pred = 0;
  Op scan = Op::kScanFull;
  RangeSel window = RangeSel::kFull;
  uint32_t first_check = 0;  // index into RuleProgram::code
  uint32_t num_checks = 0;
  std::vector<uint32_t> key_cols;
  std::vector<Operand> key_srcs;
};

/// The compiled form of one rewritten rule version.
struct RuleProgram {
  uint32_t rule_index = 0;
  uint32_t nregs = 0;
  PredRef head_pred;
  std::vector<PredRef> preds;        // one per scan level, in level order
  std::vector<const Arg*> consts;    // ground canonical terms
  std::vector<Operand> head;         // PROJECT sources, one per head col
  std::vector<Instr> code;
  std::vector<Level> levels;         // derived; see BuildLevels
};

/// Rebuilds `levels` from `code` and validates the program: scans open
/// levels in order, registers are loaded exactly once before use, PROJECT
/// and INSERT close the program. Shared by the compiler and Deserialize.
Status BuildLevels(RuleProgram* prog);

/// Textual form of one rule program; also the serialization format. The
/// first line is a "coralbc <version>" format header so checked-in
/// corpora fail loudly across grammar changes.
std::string Disassemble(const RuleProgram& prog);

/// Parses the Disassemble output back into a program (constants are
/// re-parsed into `factory`, predicate names re-interned). The result has
/// levels rebuilt, so Disassemble(Deserialize(Disassemble(p))) ==
/// Disassemble(p). The text is treated as untrusted: the format header
/// is required, every operand reference is bounds-checked at parse time,
/// and the parsed program must pass the static verifier
/// (src/vm/verifier.h), so malformed text never reaches the executor.
StatusOr<RuleProgram> Deserialize(std::string_view text,
                                  TermFactory* factory);

/// Compiled programs for one SCC, mirroring SccPlan: entry i corresponds
/// to versions[i] / once[i] of the semi-naive plan; null means "this
/// version runs interpreted".
struct SccPrograms {
  std::vector<std::unique_ptr<RuleProgram>> versions;
  std::vector<std::unique_ptr<RuleProgram>> once;
};

/// All compiled rule versions of one rewritten module form.
struct ModuleProgram {
  std::vector<SccPrograms> sccs;
  uint64_t compiled = 0;
  uint64_t skipped = 0;
  /// Programs that passed / failed the post-compile static verifier
  /// (src/vm/verifier.h). A failed program is nulled out of `sccs` and
  /// counted under `skipped` with a "verifier:" reason in the listing.
  uint64_t verified = 0;
  uint64_t verifier_rejected = 0;
  /// Disassembly of every compiled version plus one-line skip reasons;
  /// appended to the module's plan listing.
  std::string listing;
};

}  // namespace coral::vm

#endif  // CORAL_VM_BYTECODE_H_
