// Copyright (c) 1993-style CORAL reproduction authors.
// The join bytecode executor: a nested-loops join over the Levels of a
// RuleProgram with a flat register file of canonical ground Args. No
// BindEnv, no trail, no unification on the hot path — every match is a
// pointer comparison (docs/VM.md). The interpreter remains the oracle:
// any tuple the VM cannot handle (non-ground stored facts) aborts the
// application and the caller re-runs it interpreted.

#ifndef CORAL_VM_VM_H_
#define CORAL_VM_VM_H_

#include <cstdint>
#include <span>
#include <utility>

#include "src/data/term_factory.h"
#include "src/rel/hash_relation.h"
#include "src/rel/relation.h"
#include "src/vm/bytecode.h"

namespace coral::vm {

/// Per-opcode execution counts for one run; the caller folds them into
/// the Database-wide obs::VmCounters once per rule application.
struct OpCounts {
  uint64_t scan_full = 0;
  uint64_t scan_delta = 0;
  uint64_t probe_index = 0;
  uint64_t probe_scan_fallbacks = 0;
  uint64_t unify_arg = 0;
  uint64_t test_builtin = 0;
  uint64_t project = 0;
  uint64_t insert = 0;
};

/// Receives derived head tuples. Sequential evaluation inserts directly
/// (returning whether the relation changed); parallel workers buffer for
/// the barrier merge and return false.
class TupleSink {
 public:
  virtual ~TupleSink() = default;
  virtual bool Emit(const Tuple* t) = 0;
};

enum class RunResult {
  kOk,
  /// A stored candidate tuple was non-ground (or a storage scan failed):
  /// the caller must re-run this rule application through the
  /// interpreter. Tuples already emitted stay — head relations accepted
  /// by the compiler are duplicate-eliminating, so the re-run is
  /// idempotent.
  kFallback,
};

struct RunInput {
  const RuleProgram* prog = nullptr;
  /// Bound relations, one per prog->levels entry, in level order.
  std::span<Relation* const> rels;
  /// Probe targets per level; a null entry always scans.
  std::span<HashRelation* const> hash_rels;
  /// [from, to) mark windows per *body literal*, indexed by Level::lit.
  /// The driver computes these (BSN/PSN/naive all differ only here).
  std::span<const std::pair<Mark, Mark>> windows;
  TermFactory* factory = nullptr;
  /// Parallel partition filter, applied at body literal `part_lit`
  /// (PartitionKey(t, part_col) % part_count == part_index); part_lit < 0
  /// disables it.
  int part_lit = -1;
  int part_col = -1;
  uint32_t part_index = 0;
  uint32_t part_count = 1;
};

struct RunStats {
  uint64_t solutions = 0;  // full body matches (PROJECT executions)
  uint64_t tuples = 0;     // candidate tuples examined across all levels
  bool changed = false;    // any Emit returned true
  OpCounts ops;
};

RunResult Execute(const RunInput& in, TupleSink* sink, RunStats* out);

}  // namespace coral::vm

#endif  // CORAL_VM_VM_H_
