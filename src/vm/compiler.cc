// Copyright (c) 1993-style CORAL reproduction authors.

#include "src/vm/compiler.h"

#include <memory>
#include <sstream>
#include <unordered_set>

#include "src/vm/verifier.h"

namespace coral::vm {

namespace {

bool CmpFromName(const std::string& name, CmpOp* out) {
  if (name == "<") {
    *out = CmpOp::kLt;
  } else if (name == ">") {
    *out = CmpOp::kGt;
  } else if (name == "=<") {
    *out = CmpOp::kLe;
  } else if (name == ">=") {
    *out = CmpOp::kGe;
  } else if (name == "=") {
    *out = CmpOp::kEq;
  } else if (name == "\\=") {
    *out = CmpOp::kNe;
  } else {
    return false;
  }
  return true;
}

using InternalSet = std::unordered_set<PredRef, PredRefHash>;

class VersionCompiler {
 public:
  VersionCompiler(const RewrittenProgram& prog, const RuleVersion& v,
                  const InternalSet& internal, const CompileEnv& env)
      : prog_(prog), v_(v), internal_(internal), env_(env) {}

  /// Null (with `why` set) when the rule shape is outside the VM model.
  std::unique_ptr<RuleProgram> Compile(std::string* why) {
    if (v_.is_aggregate) {
      *why = "aggregate head";
      return nullptr;
    }
    const Rule& rule = prog_.rules[v_.rule_index];
    auto rp = std::make_unique<RuleProgram>();
    rp_ = rp.get();
    rp_->rule_index = v_.rule_index;
    rp_->nregs = rule.var_count;
    rp_->head_pred = rule.head.pred_ref();
    load_level_.assign(rule.var_count, -1);

    for (size_t li = 0; li < rule.body.size(); ++li) {
      const Literal& lit = rule.body[li];
      if (lit.negated) {
        *why = "negated literal";
        return nullptr;
      }
      PredRef p = lit.pred_ref();
      if (internal_.count(p) == 0) {
        if (env_.is_builtin(p.sym->name, p.arity)) {
          if (!EmitTest(lit, why)) return nullptr;
          continue;
        }
        if (env_.is_module_pred(p)) {
          *why = "cross-module literal " + p.ToString();
          return nullptr;
        }
      }
      if (!EmitLevel(lit, static_cast<uint32_t>(li), why)) return nullptr;
    }
    if (rp_->preds.empty()) {
      *why = "no relation literal in body";
      return nullptr;
    }
    for (const Arg* a : rule.head.args) {
      Operand o;
      if (!LowerOperand(a, &o, why)) {
        *why = "head: " + *why;
        return nullptr;
      }
      if (!o.is_const && load_level_[o.index] < 0) {
        *why = "head variable not bound by a scan";
        return nullptr;
      }
      rp_->head.push_back(o);
    }
    Instr project;
    project.op = Op::kProject;
    rp_->code.push_back(project);
    Instr insert;
    insert.op = Op::kInsert;
    rp_->code.push_back(insert);
    Status st = BuildLevels(rp_);
    if (!st.ok()) {
      *why = st.message();
      return nullptr;
    }
    return rp;
  }

 private:
  /// A plain variable or ground term as a register/constant operand.
  bool LowerOperand(const Arg* a, Operand* out, std::string* why) {
    if (a->kind() == ArgKind::kVariable) {
      out->is_const = false;
      out->index = ArgCast<Variable>(a)->slot();
      return true;
    }
    if (a->IsGround()) {
      out->is_const = true;
      out->index = ConstSlot(a);
      return true;
    }
    *why = "non-ground structured argument";
    return false;
  }

  uint32_t ConstSlot(const Arg* a) {
    // Constants are canonical, so pointer equality dedups the pool.
    for (uint32_t i = 0; i < rp_->consts.size(); ++i) {
      if (rp_->consts[i] == a) return i;
    }
    rp_->consts.push_back(a);
    return static_cast<uint32_t>(rp_->consts.size()) - 1;
  }

  bool EmitTest(const Literal& lit, std::string* why) {
    Instr t;
    t.op = Op::kTestBuiltin;
    if (lit.args.size() != 2 || !CmpFromName(lit.pred->name, &t.cmp)) {
      *why = "builtin " + lit.pred_ref().ToString();
      return false;
    }
    if (rp_->preds.empty()) {
      *why = "comparison before first scan";
      return false;
    }
    Operand* ops[2] = {&t.a, &t.b};
    for (int i = 0; i < 2; ++i) {
      if (!LowerOperand(lit.args[i], ops[i], why)) {
        *why = "comparison: " + *why;
        return false;
      }
      if (!ops[i]->is_const && load_level_[ops[i]->index] < 0) {
        // `=` over an unbound variable is an assignment, and any other
        // comparison over one is a runtime error — both interpreter work.
        *why = "comparison over unbound variable";
        return false;
      }
    }
    rp_->code.push_back(t);
    return true;
  }

  bool EmitLevel(const Literal& lit, uint32_t li, std::string* why) {
    int level = static_cast<int>(rp_->preds.size());
    rp_->preds.push_back(lit.pred_ref());
    size_t scan_at = rp_->code.size();
    Instr s;
    s.op = Op::kScanFull;
    s.lit = li;
    s.pred = static_cast<uint32_t>(level);
    s.window = li < v_.ranges.size() ? v_.ranges[li] : RangeSel::kFull;
    rp_->code.push_back(s);
    bool has_key = false;
    for (uint32_t col = 0; col < lit.args.size(); ++col) {
      Instr u;
      u.op = Op::kUnifyArg;
      u.col = col;
      if (!LowerOperand(lit.args[col], &u.a, why)) return false;
      if (u.a.is_const) {
        u.mode = UnifyMode::kMatchConst;
        has_key = true;
      } else if (load_level_[u.a.index] < 0) {
        u.mode = UnifyMode::kLoadReg;
        load_level_[u.a.index] = level;
      } else {
        u.mode = UnifyMode::kCheckReg;
        if (load_level_[u.a.index] < level) has_key = true;
      }
      rp_->code.push_back(u);
    }
    rp_->code[scan_at].op =
        has_key ? Op::kProbeIndex
                : (s.window == RangeSel::kDelta ? Op::kScanDelta
                                                : Op::kScanFull);
    return true;
  }

  const RewrittenProgram& prog_;
  const RuleVersion& v_;
  const InternalSet& internal_;
  const CompileEnv& env_;
  RuleProgram* rp_ = nullptr;
  std::vector<int> load_level_;
};

}  // namespace

ModuleProgram CompileModule(const RewrittenProgram& prog,
                            const ModuleDecl& decl, const CompileEnv& env) {
  ModuleProgram out;
  std::ostringstream listing;
  const char* module_skip = nullptr;
  if (decl.no_vm) {
    module_skip = "@no_vm";
  } else if (prog.ordered_search || decl.ordered_search) {
    module_skip = "ordered search";
  } else if (decl.explain) {
    module_skip = "@explain";
  } else if (decl.eval_mode == EvalMode::kPipelined) {
    module_skip = "pipelined";
  }
  if (module_skip != nullptr) {
    listing << "module interpreted: " << module_skip << "\n";
    out.listing = listing.str();
    return out;
  }

  // Predicates the evaluator materializes inside the module instance;
  // everything else is a base relation, a builtin, or another module.
  InternalSet internal;
  for (const Rule& r : prog.rules) internal.insert(r.head.pred_ref());
  if (prog.answer_pred.sym != nullptr) internal.insert(prog.answer_pred);
  if (prog.uses_magic && prog.seed_pred.sym != nullptr) {
    internal.insert(prog.seed_pred);
  }
  for (const auto& [magic, done] : prog.done_of) internal.insert(done);

  out.sccs.resize(prog.seminaive.sccs.size());
  for (size_t si = 0; si < prog.seminaive.sccs.size(); ++si) {
    const SccPlan& plan = prog.seminaive.sccs[si];
    auto compile_table =
        [&](const std::vector<RuleVersion>& versions, const char* kind,
            std::vector<std::unique_ptr<RuleProgram>>* table) {
          for (size_t vi = 0; vi < versions.size(); ++vi) {
            std::string why;
            VersionCompiler vc(prog, versions[vi], internal, env);
            std::unique_ptr<RuleProgram> rp = vc.Compile(&why);
            if (rp != nullptr) {
              // Verify-after-compile: a program the static verifier
              // rejects must never bind; it falls back to the
              // interpreter with the verifier's reason (CRL301).
              VerifyReport report = VerifyProgram(*rp);
              if (const VerifyFinding* err = report.FirstError();
                  err != nullptr) {
                why = "verifier: " + err->ToString() + " [" +
                      vdiag::kUnverifiable + "]";
                ++out.verifier_rejected;
                rp.reset();
              } else {
                ++out.verified;
              }
            }
            listing << "scc " << si << " " << kind << " " << vi;
            if (rp != nullptr) {
              ++out.compiled;
              listing << " delta=" << versions[vi].delta_pos << "\n"
                      << Disassemble(*rp);
            } else {
              ++out.skipped;
              listing << " interpreted: " << why << "\n";
            }
            table->push_back(std::move(rp));
          }
        };
    compile_table(plan.versions, "version", &out.sccs[si].versions);
    compile_table(plan.once, "once", &out.sccs[si].once);
  }
  out.listing = listing.str();
  return out;
}

}  // namespace coral::vm
