// Copyright (c) 1993-style CORAL reproduction authors.
// Static bytecode verifier and whole-plan auditor for the join VM
// (docs/VM.md "Verification"). Every compiled RuleProgram must pass
// VerifyProgram before it is eligible to bind, and Deserialize runs it on
// untrusted disassembly text, so a miscompiled or corrupted program is
// rejected with a stable CRL3xx code instead of silently producing wrong
// answers — the VM-level counterpart of the CRL1xx semantic analyzer and
// the CRL2xx abstract-interpretation checks on source programs.
//
// Two layers:
//
//   VerifyProgram  — per-program structural pass over the instruction
//                    list alone: register dataflow (loaded exactly once
//                    before any use), operand bounds (const pool,
//                    registers, pred slots, columns vs predicate arity),
//                    and shape legality (scans open levels in strictly
//                    increasing literal order, window/opcode agreement,
//                    exactly one PROJECT+INSERT tail, head arity).
//
//   AuditModule    — whole-module pass that additionally cross-checks
//                    each program against the rewritten plan it was
//                    compiled from: rule indexes and head predicates,
//                    scan windows vs the semi-naive version's ranges
//                    (SCAN_DELTA only in delta rule versions), probe
//                    patterns vs the optimizer's planned argument
//                    indexes (CRL302), and always-fail unifications
//                    proven by the absint type lattice (CRL303).

#ifndef CORAL_VM_VERIFIER_H_
#define CORAL_VM_VERIFIER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/analysis/absint.h"
#include "src/rewrite/rewriter.h"
#include "src/vm/bytecode.h"

namespace coral::vm {

/// Stable CRL3xx diagnostic codes for bytecode verification; the catalog
/// lives in docs/LANGUAGE.md alongside CRL1xx/CRL2xx. 30x are findings
/// about otherwise-valid programs; 31x are hard rejections.
namespace vdiag {
/// Program failed verification; runs interpreted (with reason).
inline constexpr const char* kUnverifiable = "CRL301";
/// PROBE_INDEX key pattern has no backing planned index; degrades to a
/// window scan at run time.
inline constexpr const char* kProbeNoIndex = "CRL302";
/// Unification or comparison the type lattice proves can never succeed.
inline constexpr const char* kAlwaysFailUnify = "CRL303";
/// Register slot allocated but never loaded (note; the compiler numbers
/// registers by rule variable slot, so unused slots are routine).
inline constexpr const char* kDeadRegister = "CRL304";
/// Register dataflow violation: use before load, double load, load of a
/// constant operand, or register index out of range.
inline constexpr const char* kRegisterDataflow = "CRL310";
/// Operand bounds violation: const pool, pred slot, column vs arity,
/// head operand count, rule index.
inline constexpr const char* kOperandBounds = "CRL311";
/// Shape violation: scan order, window/opcode disagreement, misplaced
/// PROJECT/INSERT, probe without a key column.
inline constexpr const char* kShape = "CRL312";
/// Program disagrees with the rewritten plan it claims to implement.
inline constexpr const char* kPlanMismatch = "CRL313";
}  // namespace vdiag

/// Hard upper bounds on deserialized programs, so untrusted text cannot
/// make the verifier (or the executor's bind path) allocate absurdly.
inline constexpr uint32_t kMaxRegisters = 1u << 20;
inline constexpr uint32_t kMaxLiterals = 1u << 12;

enum class VerifySeverity : uint8_t { kError, kWarning, kNote };

const char* VerifySeverityName(VerifySeverity s);

struct VerifyFinding {
  VerifySeverity severity = VerifySeverity::kError;
  const char* code = "";  // vdiag constant (static storage)
  std::string message;

  /// "error[CRL310]: check of unloaded register r2" — one line.
  std::string ToString() const;
};

/// Findings from verifying one program. A program with no errors is
/// eligible to bind; warnings and notes are advisory.
struct VerifyReport {
  std::vector<VerifyFinding> findings;

  bool ok() const { return error_count() == 0; }
  size_t error_count() const;
  size_t warning_count() const;
  const VerifyFinding* FirstError() const;
  bool Has(const char* code) const;
  /// One finding per line, errors first retained in discovery order.
  std::string ToString() const;
};

/// Structural verification of one program from its instruction list
/// alone (no plan context required). Pure; does not touch prog.levels.
VerifyReport VerifyProgram(const RuleProgram& prog);

struct AuditOptions {
  /// The rewritten program the module was compiled from; enables the
  /// plan-consistency checks (rule/head identity, windows vs semi-naive
  /// ranges, scan literals vs rule bodies). Null: structural pass only.
  const RewrittenProgram* rewritten = nullptr;
  /// The module declaration, for @make_index declarations that can back
  /// a probe the optimizer did not plan for. May be null.
  const ModuleDecl* decl = nullptr;
  /// Absint facts over rewritten->rules; enables CRL303 (always-fail
  /// unify by the type lattice). May be null.
  const absint::AnalysisResult* facts = nullptr;
  /// True when automatic index planning ran (rewritten->index_plan is
  /// the complete probe plan); enables CRL302. When index planning was
  /// off every probe would trivially lack a backing index, so the check
  /// stays quiet.
  bool index_plan_authoritative = false;
};

/// The verdict on one compiled rule version.
struct ProgramVerdict {
  uint32_t scc = 0;
  bool once = false;     // plan.once (vs plan.versions) table
  uint32_t index = 0;    // slot within the table
  uint32_t rule_index = 0;
  std::string head;      // "p/2"
  VerifyReport report;
};

/// Whole-module audit result: one verdict per compiled program.
struct ModuleAudit {
  std::vector<ProgramVerdict> verdicts;
  uint64_t verified = 0;  // programs with no errors
  uint64_t rejected = 0;  // programs with errors (must not bind)
  uint64_t warnings = 0;  // warning findings across all programs

  bool ok() const { return rejected == 0; }
  /// Summary line plus one line per non-note finding; "" when the module
  /// has no compiled programs.
  std::string ToString() const;
};

/// Runs VerifyProgram on every compiled program of `mp` plus the plan-
/// consistency checks AuditOptions enables. Null table entries
/// (interpreted versions) are skipped.
ModuleAudit AuditModule(const ModuleProgram& mp, const AuditOptions& opts);

}  // namespace coral::vm

#endif  // CORAL_VM_VERIFIER_H_
